//! Ground truth over object values and truth assignments produced by fusion methods.

use std::collections::HashMap;

use crate::dataset::Dataset;
use crate::ids::{ObjectId, SourceId, ValueId};

/// A (possibly partial) assignment of true values `v*_o` to objects.
///
/// In the paper this plays two roles: the full ground truth used for *evaluation*, and the
/// (usually small) labelled subset `G` handed to the learner for *training*. Both are the
/// same type here; [`GroundTruth::subset`] carves a training set out of a full labelling.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    values: Vec<Option<ValueId>>,
}

impl GroundTruth {
    /// Creates an empty ground truth covering `num_objects` objects with no labels.
    pub fn empty(num_objects: usize) -> Self {
        Self {
            values: vec![None; num_objects],
        }
    }

    /// Creates a ground truth from a dense vector of labels.
    pub fn from_values(values: Vec<Option<ValueId>>) -> Self {
        Self { values }
    }

    /// Creates a ground truth from `(object, value)` pairs, covering `num_objects` objects.
    pub fn from_pairs(
        num_objects: usize,
        pairs: impl IntoIterator<Item = (ObjectId, ValueId)>,
    ) -> Self {
        let mut truth = Self::empty(num_objects);
        for (o, v) in pairs {
            truth.set(o, v);
        }
        truth
    }

    /// Sets the label for object `o`, growing the underlying storage if needed.
    pub fn set(&mut self, o: ObjectId, v: ValueId) {
        if o.index() >= self.values.len() {
            self.values.resize(o.index() + 1, None);
        }
        self.values[o.index()] = Some(v);
    }

    /// Removes the label for object `o`.
    pub fn clear(&mut self, o: ObjectId) {
        if o.index() < self.values.len() {
            self.values[o.index()] = None;
        }
    }

    /// The label of object `o`, if any.
    pub fn get(&self, o: ObjectId) -> Option<ValueId> {
        self.values.get(o.index()).copied().flatten()
    }

    /// Number of objects covered by this labelling (labelled or not).
    pub fn num_objects(&self) -> usize {
        self.values.len()
    }

    /// Number of labelled objects `|G|`.
    pub fn num_labeled(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Whether no object carries a label.
    pub fn is_empty(&self) -> bool {
        self.num_labeled() == 0
    }

    /// Iterates over labelled `(object, value)` pairs.
    pub fn labeled(&self) -> impl Iterator<Item = (ObjectId, ValueId)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (ObjectId::new(i), v)))
    }

    /// Returns a new ground truth containing only the labels of the listed objects.
    pub fn subset(&self, objects: &[ObjectId]) -> GroundTruth {
        let mut sub = GroundTruth::empty(self.values.len());
        for &o in objects {
            if let Some(v) = self.get(o) {
                sub.set(o, v);
            }
        }
        sub
    }

    /// The *true accuracy* `A*_s` of every source with respect to this labelling: the
    /// fraction of a source's observations on labelled objects that match the label.
    /// Sources with no observation on a labelled object get `None`.
    pub fn source_accuracies(&self, dataset: &Dataset) -> Vec<Option<f64>> {
        let mut correct = vec![0usize; dataset.num_sources()];
        let mut total = vec![0usize; dataset.num_sources()];
        for obs in dataset.live_observations() {
            if let Some(truth) = self.get(obs.object) {
                total[obs.source.index()] += 1;
                if truth == obs.value {
                    correct[obs.source.index()] += 1;
                }
            }
        }
        correct
            .into_iter()
            .zip(total)
            .map(|(c, t)| {
                if t == 0 {
                    None
                } else {
                    Some(c as f64 / t as f64)
                }
            })
            .collect()
    }

    /// Mean of the per-source true accuracies, weighting each source equally
    /// (the "Avg. Src. Acc." row of Table 1). `None` if no source can be scored.
    pub fn average_source_accuracy(&self, dataset: &Dataset) -> Option<f64> {
        let accs: Vec<f64> = self
            .source_accuracies(dataset)
            .into_iter()
            .flatten()
            .collect();
        if accs.is_empty() {
            None
        } else {
            Some(accs.iter().sum::<f64>() / accs.len() as f64)
        }
    }
}

/// The output labelling produced by a fusion method, together with optional per-object
/// confidence (the MAP posterior probability `P(T_o = v_o | Ω)` for probabilistic methods).
#[derive(Debug, Clone, Default)]
pub struct TruthAssignment {
    values: Vec<Option<ValueId>>,
    confidence: Vec<f64>,
}

impl TruthAssignment {
    /// Creates an assignment covering `num_objects` objects with no predictions.
    pub fn empty(num_objects: usize) -> Self {
        Self {
            values: vec![None; num_objects],
            confidence: vec![0.0; num_objects],
        }
    }

    /// Records the predicted value for object `o` with the given confidence.
    pub fn assign(&mut self, o: ObjectId, v: ValueId, confidence: f64) {
        if o.index() >= self.values.len() {
            self.values.resize(o.index() + 1, None);
            self.confidence.resize(o.index() + 1, 0.0);
        }
        self.values[o.index()] = Some(v);
        self.confidence[o.index()] = confidence;
    }

    /// The predicted value for object `o`, if any.
    pub fn get(&self, o: ObjectId) -> Option<ValueId> {
        self.values.get(o.index()).copied().flatten()
    }

    /// The confidence attached to the prediction for object `o` (0.0 when unpredicted).
    pub fn confidence(&self, o: ObjectId) -> f64 {
        self.confidence.get(o.index()).copied().unwrap_or(0.0)
    }

    /// Number of objects covered (predicted or not).
    pub fn num_objects(&self) -> usize {
        self.values.len()
    }

    /// Number of objects with a prediction.
    pub fn num_assigned(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Iterates over `(object, value, confidence)` triples for predicted objects.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, ValueId, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (ObjectId::new(i), v, self.confidence[i])))
    }

    /// Converts the assignment into a map, dropping confidences.
    pub fn to_map(&self) -> HashMap<ObjectId, ValueId> {
        self.iter().map(|(o, v, _)| (o, v)).collect()
    }

    /// Fraction of objects in `eval_objects` whose prediction matches `truth`
    /// (the paper's *Accuracy for True Object Values*). Unpredicted objects count as wrong.
    pub fn accuracy_against(&self, truth: &GroundTruth, eval_objects: &[ObjectId]) -> f64 {
        if eval_objects.is_empty() {
            return 0.0;
        }
        let correct = eval_objects
            .iter()
            .filter(|&&o| match (self.get(o), truth.get(o)) {
                (Some(pred), Some(actual)) => pred == actual,
                _ => false,
            })
            .count();
        correct as f64 / eval_objects.len() as f64
    }
}

/// Estimated accuracies of all sources, as produced by a probabilistic fusion method.
#[derive(Debug, Clone, Default)]
pub struct SourceAccuracies {
    accuracies: Vec<f64>,
}

impl SourceAccuracies {
    /// Wraps a dense per-source accuracy vector.
    pub fn new(accuracies: Vec<f64>) -> Self {
        Self { accuracies }
    }

    /// The estimated accuracy of source `s`.
    pub fn get(&self, s: SourceId) -> f64 {
        self.accuracies.get(s.index()).copied().unwrap_or(0.5)
    }

    /// Dense access to all accuracies.
    pub fn as_slice(&self) -> &[f64] {
        &self.accuracies
    }

    /// Number of sources covered.
    pub fn len(&self) -> usize {
        self.accuracies.len()
    }

    /// Whether no source is covered.
    pub fn is_empty(&self) -> bool {
        self.accuracies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn toy() -> (Dataset, GroundTruth) {
        let mut b = DatasetBuilder::new();
        b.observe("s0", "o0", "false").unwrap();
        b.observe("s1", "o0", "false").unwrap();
        b.observe("s2", "o0", "true").unwrap();
        b.observe("s0", "o1", "true").unwrap();
        b.observe("s2", "o1", "true").unwrap();
        let d = b.build();
        let false_v = d.value_id("false").unwrap();
        let true_v = d.value_id("true").unwrap();
        let truth = GroundTruth::from_pairs(
            d.num_objects(),
            [
                (d.object_id("o0").unwrap(), false_v),
                (d.object_id("o1").unwrap(), true_v),
            ],
        );
        (d, truth)
    }

    #[test]
    fn ground_truth_basic_accessors() {
        let (d, truth) = toy();
        assert_eq!(truth.num_objects(), 2);
        assert_eq!(truth.num_labeled(), 2);
        assert!(!truth.is_empty());
        let o0 = d.object_id("o0").unwrap();
        assert_eq!(truth.get(o0), d.value_id("false"));
    }

    #[test]
    fn subset_keeps_only_requested_objects() {
        let (d, truth) = toy();
        let o1 = d.object_id("o1").unwrap();
        let sub = truth.subset(&[o1]);
        assert_eq!(sub.num_labeled(), 1);
        assert_eq!(sub.get(o1), d.value_id("true"));
        assert_eq!(sub.get(d.object_id("o0").unwrap()), None);
    }

    #[test]
    fn source_accuracies_match_hand_computation() {
        let (d, truth) = toy();
        let accs = truth.source_accuracies(&d);
        // s0: o0=false (correct), o1=true (correct) -> 1.0
        // s1: o0=false (correct) -> 1.0
        // s2: o0=true (wrong), o1=true (correct) -> 0.5
        assert_eq!(accs[d.source_id("s0").unwrap().index()], Some(1.0));
        assert_eq!(accs[d.source_id("s1").unwrap().index()], Some(1.0));
        assert_eq!(accs[d.source_id("s2").unwrap().index()], Some(0.5));
        let avg = truth.average_source_accuracy(&d).unwrap();
        assert!((avg - (1.0 + 1.0 + 0.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unobserved_sources_have_no_accuracy() {
        let mut b = DatasetBuilder::new();
        b.observe("s0", "o0", "x").unwrap();
        b.reserve_sources(2);
        let d = b.build();
        let truth = GroundTruth::from_pairs(1, [(ObjectId::new(0), d.value_id("x").unwrap())]);
        let accs = truth.source_accuracies(&d);
        assert_eq!(accs.len(), 2);
        assert_eq!(accs[1], None);
    }

    #[test]
    fn assignment_accuracy_counts_missing_as_wrong() {
        let (d, truth) = toy();
        let o0 = d.object_id("o0").unwrap();
        let o1 = d.object_id("o1").unwrap();
        let mut assignment = TruthAssignment::empty(d.num_objects());
        assignment.assign(o0, d.value_id("false").unwrap(), 0.9);
        // o1 left unpredicted.
        let acc = assignment.accuracy_against(&truth, &[o0, o1]);
        assert!((acc - 0.5).abs() < 1e-12);
        assert_eq!(assignment.num_assigned(), 1);
        assert!((assignment.confidence(o0) - 0.9).abs() < 1e-12);
        assert_eq!(assignment.confidence(o1), 0.0);
    }

    #[test]
    fn assignment_iter_and_map() {
        let (d, _) = toy();
        let o0 = d.object_id("o0").unwrap();
        let mut assignment = TruthAssignment::empty(d.num_objects());
        assignment.assign(o0, d.value_id("true").unwrap(), 0.7);
        let map = assignment.to_map();
        assert_eq!(map.len(), 1);
        assert_eq!(map[&o0], d.value_id("true").unwrap());
        assert_eq!(assignment.iter().count(), 1);
    }

    #[test]
    fn source_accuracy_container_defaults_to_half() {
        let accs = SourceAccuracies::new(vec![0.9, 0.2]);
        assert_eq!(accs.get(SourceId::new(0)), 0.9);
        assert_eq!(accs.get(SourceId::new(5)), 0.5);
        assert_eq!(accs.len(), 2);
        assert!(!accs.is_empty());
    }

    #[test]
    fn clearing_a_label_removes_it() {
        let (d, mut truth) = toy();
        let o0 = d.object_id("o0").unwrap();
        truth.clear(o0);
        assert_eq!(truth.get(o0), None);
        assert_eq!(truth.num_labeled(), 1);
    }
}
