//! Sharded, deterministic bulk ingest of claims and claim CSVs.
//!
//! A 10M-claim load is dominated by string interning and duplicate detection — work
//! that parallelizes cleanly if each shard builds its own [`DatasetBuilder`] with
//! shard-local interners. The pipeline here is:
//!
//! 1. **Shard**: split the input into fixed-size shards. The shard grid depends only on
//!    the *data* (claim counts or byte offsets), never on the lane count.
//! 2. **Parallel build**: each shard runs on the process-wide worker pool and interns
//!    its own names in shard-local first-seen order.
//! 3. **Deterministic merge**: shards are folded into one builder **in shard order**,
//!    re-interning each shard's vocabulary in its local first-seen order. A name's
//!    global first appearance lies in the earliest shard that saw it, so this
//!    reproduces exactly the handle assignment a single sequential pass would have
//!    produced — the merged dataset is bitwise-identical at any `SLIMFAST_THREADS`.
//! 4. **Indexed build**: the merged builder runs the normal CSR indexing pass, with
//!    its per-row sorts sharded over the same worker pool.
//!
//! Deduplication of exact duplicate claims and rejection of conflicting claims follow
//! the sequential semantics (first claim in stream order wins). One caveat: when an
//! input contains *several* independent errors, the one reported may differ from the
//! sequential reader's (a conflict wholly inside a later shard is detected during the
//! parallel phase, before merge-time cross-shard checks of earlier claims) — but which
//! error is reported is still deterministic at any lane count, and an input that the
//! sequential path accepts is accepted here with the identical result.

use slimfast_optim::exec;

use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::DataError;
use crate::io::parse_claim_fields;
use crate::observation::NamedObservation;

/// Claims per ingest shard. Large enough that shard-local interner tables amortize,
/// small enough that a 10M-claim load fans out to dozens of shards.
pub const SHARD_CLAIMS: usize = 262_144;

/// Bytes per CSV ingest shard (boundaries are advanced to the next newline).
pub const SHARD_BYTES: usize = 8 << 20;

/// Builds a dataset from named claims using up to `threads` workers (`0` = auto via
/// `SLIMFAST_THREADS`). Produces a dataset bitwise-identical to feeding the claims
/// through one sequential [`DatasetBuilder`] — at any thread count.
///
/// Fails like the sequential path when a source asserts two different values for the
/// same object (exact duplicates are deduplicated silently).
pub fn build_claims_sharded(
    claims: &[NamedObservation],
    threads: usize,
) -> Result<Dataset, DataError> {
    build_claims_sharded_with(claims, threads, SHARD_CLAIMS)
}

/// [`build_claims_sharded`] with an explicit shard size, exposed so tests can force
/// multi-shard execution on small inputs. `shard_claims` must be non-zero.
pub fn build_claims_sharded_with(
    claims: &[NamedObservation],
    threads: usize,
    shard_claims: usize,
) -> Result<Dataset, DataError> {
    assert!(shard_claims > 0, "shard size must be non-zero");
    let threads = exec::resolve_threads(threads);
    let num_shards = claims.len().div_ceil(shard_claims).max(1);
    // Conflicts inside a shard surface here with shard-local handles; remap to the
    // merged handle space below so errors match the sequential reporter.
    let shards: Vec<Result<DatasetBuilder, DataError>> =
        exec::map_parts(num_shards, threads, |part| {
            let lo = part * shard_claims;
            let hi = ((part + 1) * shard_claims).min(claims.len());
            let mut builder = DatasetBuilder::with_capacity(hi - lo);
            for claim in &claims[lo..hi] {
                builder.observe(&claim.source, &claim.object, &claim.value)?;
            }
            Ok(builder)
        });
    let mut merged = DatasetBuilder::with_capacity(claims.len());
    for shard in &shards {
        match shard {
            Ok(builder) => merged.merge_from(builder)?,
            Err(DataError::ConflictingObservation { .. }) => {
                // Re-run the offending shard's claims through the merged builder so the
                // reported handles live in the merged space. The merge of all prior
                // shards already succeeded, so the replay hits the same conflict.
                for claim in claims {
                    merged.observe(&claim.source, &claim.object, &claim.value)?;
                }
                unreachable!("shard-local conflict must reproduce during replay");
            }
            Err(other) => return Err(other.clone()),
        }
    }
    Ok(merged.build_with_threads(threads))
}

/// Reads observations from `source,object,value` CSV bytes using up to `threads`
/// workers (`0` = auto via `SLIMFAST_THREADS`). Same format and semantics as
/// [`crate::io::read_observations_csv`] — empty lines and `#` comments ignored,
/// malformed lines reported with their (global) 1-based line number — and the same
/// resulting dataset, bitwise, at any thread count.
pub fn read_observations_csv_sharded(bytes: &[u8], threads: usize) -> Result<Dataset, DataError> {
    read_observations_csv_sharded_with(bytes, threads, SHARD_BYTES)
}

/// [`read_observations_csv_sharded`] with an explicit shard size in bytes, exposed so
/// tests can force multi-shard execution on small inputs.
pub fn read_observations_csv_sharded_with(
    bytes: &[u8],
    threads: usize,
    shard_bytes: usize,
) -> Result<Dataset, DataError> {
    assert!(shard_bytes > 0, "shard size must be non-zero");
    let threads = exec::resolve_threads(threads);
    // Shard boundaries: every multiple of `shard_bytes`, advanced to just past the
    // next newline so no line straddles two shards. Purely data-dependent.
    let mut bounds = vec![0usize];
    let mut at = shard_bytes.min(bytes.len());
    while at < bytes.len() {
        match bytes[at..].iter().position(|&b| b == b'\n') {
            Some(nl) => {
                at += nl + 1;
                if at >= bytes.len() {
                    break;
                }
                bounds.push(at);
                at = (at + shard_bytes).min(bytes.len());
            }
            None => break,
        }
    }
    bounds.push(bytes.len());
    let num_shards = bounds.len() - 1;

    // Each shard parses independently, reporting errors with shard-local line numbers
    // plus the total line count so global numbers can be reconstructed afterwards.
    type ShardOutcome = (Result<DatasetBuilder, (usize, DataError)>, usize);
    let shards: Vec<ShardOutcome> = exec::map_parts(num_shards, threads, |part| {
        let chunk = &bytes[bounds[part]..bounds[part + 1]];
        let text = match std::str::from_utf8(chunk) {
            Ok(text) => text,
            Err(e) => {
                return (
                    Err((0, DataError::Io(format!("invalid UTF-8 in input: {e}")))),
                    0,
                )
            }
        };
        let mut builder = DatasetBuilder::new();
        let mut lines = 0usize;
        for (idx, line) in text.lines().enumerate() {
            lines += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let Some((source, object, value)) = parse_claim_fields(trimmed) else {
                return (
                    Err((
                        idx + 1,
                        DataError::Parse {
                            line: idx + 1,
                            message:
                                "expected exactly three comma-separated fields: source,object,value"
                                    .to_string(),
                        },
                    )),
                    lines,
                );
            };
            if let Err(e) = builder.observe(source, object, value) {
                return (Err((idx + 1, e)), lines);
            }
        }
        (Ok(builder), lines)
    });

    let mut merged = DatasetBuilder::new();
    let mut line_offset = 0usize;
    for (outcome, lines) in &shards {
        match outcome {
            Ok(builder) => merged.merge_from(builder)?,
            Err((local_line, err)) => {
                // Rewrite shard-local line numbers into global ones. Earlier shards
                // completed (their counts are exact), so the prefix sum is correct.
                return Err(match err {
                    DataError::Parse { message, .. } => DataError::Parse {
                        line: line_offset + local_line,
                        message: message.clone(),
                    },
                    other => other.clone(),
                });
            }
        }
        line_offset += lines;
    }
    Ok(merged.build_with_threads(threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::read_observations_csv;

    fn claims(n: usize) -> Vec<NamedObservation> {
        (0..n)
            .map(|i| {
                NamedObservation::new(
                    format!("s{}", i % 13),
                    format!("o{}", i % 41),
                    format!("v{}", (i % 41) % 3),
                )
            })
            .collect()
    }

    #[test]
    fn sharded_claim_build_matches_sequential_at_any_lane_count() {
        let claims = claims(500);
        let mut sequential = DatasetBuilder::with_capacity(claims.len());
        for c in &claims {
            sequential.observe(&c.source, &c.object, &c.value).unwrap();
        }
        let sequential = sequential.build();
        for threads in [1, 2, 4] {
            for shard in [7, 64, 1000] {
                let sharded = build_claims_sharded_with(&claims, threads, shard).unwrap();
                assert!(
                    sequential.same_content(&sharded),
                    "threads={threads} shard={shard}"
                );
            }
        }
    }

    #[test]
    fn cross_shard_conflicts_are_detected_at_merge() {
        let mut claims = claims(40);
        // Same (source, object) as claim 0 but a different value, in a later shard.
        claims.push(NamedObservation::new("s0", "o0", "v-clash"));
        let err = build_claims_sharded_with(&claims, 2, 8).unwrap_err();
        assert!(matches!(err, DataError::ConflictingObservation { .. }));
        // Exact cross-shard duplicates are fine.
        let mut claims = self::claims(40);
        claims.push(claims[0].clone());
        let d = build_claims_sharded_with(&claims, 2, 8).unwrap();
        assert_eq!(d.num_observations(), 40);
    }

    #[test]
    fn sharded_csv_matches_sequential_reader() {
        let mut csv = String::from("# header comment\n");
        for c in &claims(300) {
            csv.push_str(&format!("{},{},{}\n", c.source, c.object, c.value));
        }
        csv.push('\n');
        let sequential = read_observations_csv(csv.as_bytes()).unwrap();
        for threads in [1, 4] {
            for shard in [16, 256, 1 << 20] {
                let sharded =
                    read_observations_csv_sharded_with(csv.as_bytes(), threads, shard).unwrap();
                assert!(
                    sequential.same_content(&sharded),
                    "threads={threads} shard={shard}"
                );
            }
        }
    }

    #[test]
    fn sharded_csv_reports_global_line_numbers() {
        let mut csv = String::new();
        for i in 0..100 {
            csv.push_str(&format!("s{i},o{i},v\n"));
        }
        csv.push_str("broken line without commas\n");
        let err = read_observations_csv_sharded_with(csv.as_bytes(), 4, 64).unwrap_err();
        match err {
            DataError::Parse { line, .. } => assert_eq!(line, 101),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input_builds_an_empty_dataset() {
        let d = build_claims_sharded(&[], 4).unwrap();
        assert_eq!(d.num_observations(), 0);
        let d = read_observations_csv_sharded(b"", 4).unwrap();
        assert_eq!(d.num_observations(), 0);
    }
}
