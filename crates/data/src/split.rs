//! Reproducible train/test partitions of the labelled objects.
//!
//! The paper's evaluation (Section 5.1) varies the fraction of training data in
//! `{0.1, 1, 5, 10, 20}` percent, draws splits at random, and averages each configuration
//! over five runs. [`SplitPlan`] captures exactly that protocol.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::DataError;
use crate::ids::ObjectId;
use crate::truth::GroundTruth;

/// A single train/test partition of labelled objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Objects whose labels are revealed to the learner (the ground truth `G`).
    pub train: Vec<ObjectId>,
    /// Objects held out for evaluation.
    pub test: Vec<ObjectId>,
}

impl Split {
    /// The training labels as a [`GroundTruth`] restricted to the train objects.
    pub fn train_truth(&self, full: &GroundTruth) -> GroundTruth {
        full.subset(&self.train)
    }

    /// Fraction of labelled objects that landed in the training set.
    pub fn train_fraction(&self) -> f64 {
        let total = self.train.len() + self.test.len();
        if total == 0 {
            0.0
        } else {
            self.train.len() as f64 / total as f64
        }
    }
}

/// A reproducible plan for drawing random train/test splits.
///
/// ```
/// use slimfast_data::{GroundTruth, ObjectId, SplitPlan, ValueId};
///
/// let truth = GroundTruth::from_pairs(100, (0..100).map(|i| (ObjectId::new(i), ValueId::new(0))));
/// let plan = SplitPlan::new(0.2, 7);
/// let split = plan.draw(&truth, 0).unwrap();
/// assert_eq!(split.train.len(), 20);
/// assert_eq!(split.test.len(), 80);
/// // Same repetition index => identical split.
/// assert_eq!(plan.draw(&truth, 0).unwrap(), split);
/// // Different repetition => (almost surely) different split.
/// assert_ne!(plan.draw(&truth, 1).unwrap(), split);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SplitPlan {
    train_fraction: f64,
    seed: u64,
}

impl SplitPlan {
    /// Creates a plan placing `train_fraction` of the labelled objects in the training set.
    pub fn new(train_fraction: f64, seed: u64) -> Self {
        Self {
            train_fraction,
            seed,
        }
    }

    /// The configured training fraction.
    pub fn train_fraction(&self) -> f64 {
        self.train_fraction
    }

    /// Draws the split for repetition `rep`. The same `(plan, rep)` always produces the
    /// same partition, independent of call order.
    pub fn draw(&self, truth: &GroundTruth, rep: u64) -> Result<Split, DataError> {
        if !(0.0..=1.0).contains(&self.train_fraction) {
            return Err(DataError::Invalid(format!(
                "train fraction must lie in [0, 1], got {}",
                self.train_fraction
            )));
        }
        let mut labeled: Vec<ObjectId> = truth.labeled().map(|(o, _)| o).collect();
        if labeled.is_empty() {
            return Err(DataError::Invalid(
                "cannot split an unlabeled ground truth".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(rep),
        );
        labeled.shuffle(&mut rng);
        // Round to the nearest count but keep at least one training example when the
        // fraction is non-zero (the paper's 0.1% settings on ~1k-object datasets rely on
        // this: 0.1% of 907 objects is a single labelled object).
        let mut n_train = (labeled.len() as f64 * self.train_fraction).round() as usize;
        if self.train_fraction > 0.0 {
            n_train = n_train.max(1);
        }
        n_train = n_train.min(labeled.len());
        let train = labeled[..n_train].to_vec();
        let test = labeled[n_train..].to_vec();
        Ok(Split { train, test })
    }

    /// Draws `reps` independent splits.
    pub fn draw_many(&self, truth: &GroundTruth, reps: u64) -> Result<Vec<Split>, DataError> {
        (0..reps).map(|r| self.draw(truth, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ValueId;

    fn truth(n: usize) -> GroundTruth {
        GroundTruth::from_pairs(n, (0..n).map(|i| (ObjectId::new(i), ValueId::new(i % 2))))
    }

    #[test]
    fn split_sizes_follow_fraction() {
        let t = truth(200);
        let plan = SplitPlan::new(0.05, 1);
        let split = plan.draw(&t, 0).unwrap();
        assert_eq!(split.train.len(), 10);
        assert_eq!(split.test.len(), 190);
        assert!((split.train_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn tiny_fractions_keep_one_training_example() {
        let t = truth(907);
        let plan = SplitPlan::new(0.001, 3);
        let split = plan.draw(&t, 0).unwrap();
        assert_eq!(split.train.len(), 1);
        assert_eq!(split.test.len(), 906);
    }

    #[test]
    fn zero_fraction_yields_empty_training_set() {
        let t = truth(50);
        let plan = SplitPlan::new(0.0, 3);
        let split = plan.draw(&t, 0).unwrap();
        assert!(split.train.is_empty());
        assert_eq!(split.test.len(), 50);
    }

    #[test]
    fn splits_are_deterministic_per_repetition() {
        let t = truth(100);
        let plan = SplitPlan::new(0.3, 42);
        assert_eq!(plan.draw(&t, 5).unwrap(), plan.draw(&t, 5).unwrap());
        assert_ne!(plan.draw(&t, 5).unwrap(), plan.draw(&t, 6).unwrap());
    }

    #[test]
    fn train_and_test_partition_the_labeled_objects() {
        let t = truth(100);
        let plan = SplitPlan::new(0.25, 9);
        for split in plan.draw_many(&t, 5).unwrap() {
            let mut all: Vec<_> = split
                .train
                .iter()
                .chain(split.test.iter())
                .copied()
                .collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 100);
        }
    }

    #[test]
    fn invalid_fractions_and_empty_truth_are_rejected() {
        let t = truth(10);
        assert!(SplitPlan::new(1.5, 0).draw(&t, 0).is_err());
        let empty = GroundTruth::empty(10);
        assert!(SplitPlan::new(0.5, 0).draw(&empty, 0).is_err());
    }

    #[test]
    fn train_truth_contains_only_train_labels() {
        let t = truth(20);
        let plan = SplitPlan::new(0.5, 11);
        let split = plan.draw(&t, 0).unwrap();
        let train_truth = split.train_truth(&t);
        assert_eq!(train_truth.num_labeled(), split.train.len());
        for o in &split.test {
            assert_eq!(train_truth.get(*o), None);
        }
    }
}
