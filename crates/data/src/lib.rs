//! # slimfast-data
//!
//! Data model substrate for the SLiMFast data-fusion framework.
//!
//! This crate defines the vocabulary every other crate in the workspace speaks:
//!
//! * [`SourceId`], [`ObjectId`], [`ValueId`], [`FeatureId`] — dense integer handles for the
//!   entities of a fusion instance, produced by [`Interner`]s that map user-facing string
//!   names to handles.
//! * [`Observation`] — a single claim `(source, object, value)`.
//! * [`Dataset`] — the indexed collection of all observations of a fusion instance, with
//!   per-object and per-source adjacency, built through [`DatasetBuilder`].
//! * [`GroundTruth`] — the (possibly partial) set of known true object values, and
//!   [`TruthAssignment`] — the output of a fusion method.
//! * [`FeatureMatrix`] — per-source domain-specific features (Section 3.1 of the paper).
//! * [`Split`] / [`SplitPlan`] — reproducible train/test partitions of the ground truth.
//! * [`DatasetStats`] — the statistics reported in Table 1 of the paper.
//! * [`FusionEstimator`] / [`FittedFusion`] — the two-phase fit→predict contract
//!   implemented by SLiMFast and by every baseline, separating learning from inference
//!   so fitted models can be reused, persisted, and served incrementally.
//! * [`FusionMethod`] / [`FusionOutput`] — the one-shot `fuse` interface, provided for
//!   every estimator by a blanket impl (`fuse = fit + predict`) so the evaluation
//!   harness can treat all methods uniformly.
//!
//! The crate has no opinion about *how* fusion is performed; it only captures the shape of
//! the problem: conflicting observations over objects with single-truth semantics.
//!
//! ## Persistence
//!
//! Two complementary channels exist: human-auditable CSV ([`io`]) and the columnar
//! binary snapshot containers of [`snapshot`] — versioned, checksummed, and loaded
//! with one contiguous read per column straight into the CSR layouts. The low-level
//! wire vocabulary (varints, delta-encoded offsets, RLE blocks, FNV-1a checksums)
//! lives in [`mod@format`] and is shared with the model blobs of `slimfast-core`.
//!
//! ## Fault tolerance
//!
//! [`SnapshotDir`] rotates snapshots as numbered generations and recovers by scanning
//! newest→oldest past torn or corrupt files; [`read_observations_csv_lenient`]
//! quarantines malformed claim lines instead of aborting a load; and the [`faults`]
//! module provides the deterministic fault-injection layer (active only under the
//! `fault-injection` feature) that keeps those failure paths tested.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dataset;
pub mod error;
pub mod estimator;
pub mod faults;
pub mod features;
pub mod format;
pub mod fusion;
pub mod ids;
pub mod ingest;
pub mod io;
pub mod observation;
pub mod snapshot;
pub mod split;
pub mod stats;
pub mod truth;

pub use dataset::{full_index_passes, Dataset, DatasetBuilder, StorageStats};
pub use error::DataError;
pub use estimator::{FittedFusion, FusionEstimator};
pub use faults::{FaultKind, FaultPlan, FaultScope};
pub use features::{FeatureMatrix, FeatureMatrixBuilder, FeatureValue};
pub use fusion::{FusionInput, FusionMethod, FusionOutput};
pub use ids::{FeatureId, Interner, ObjectId, SourceId, ValueId};
pub use ingest::{build_claims_sharded, read_observations_csv_sharded};
pub use io::{
    atomic_write, read_features_csv, read_ground_truth_csv, read_observations_csv,
    read_observations_csv_lenient, write_ground_truth_csv, write_observations_csv, IngestReport,
    RejectedRow,
};
pub use observation::{NamedObservation, Observation};
pub use snapshot::{
    dataset_from_bytes, dataset_to_bytes, features_from_bytes, features_to_bytes,
    read_dataset_file, write_dataset_file, Recovered, SnapshotDir,
};
pub use split::{Split, SplitPlan};
pub use stats::DatasetStats;
pub use truth::{GroundTruth, SourceAccuracies, TruthAssignment};
