//! Domain-specific features describing data sources (Section 3.1 of the paper).
//!
//! Features are stored sparsely per source: each source carries a list of
//! `(feature, value)` pairs. The paper discretizes numeric metadata (Alexa traffic
//! statistics, citation counts, ...) into Boolean indicator features; the
//! [`FeatureMatrixBuilder`] offers both raw numeric features and a
//! [`FeatureMatrixBuilder::set_bucketed`] helper performing that discretization.

use crate::ids::{FeatureId, Interner, SourceId};

/// Value a source takes for a feature; Boolean indicators use `1.0` / absence.
pub type FeatureValue = f64;

/// Sparse per-source feature matrix `F = (f_{s,k})`.
///
/// ```
/// use slimfast_data::{FeatureMatrixBuilder, SourceId};
///
/// let mut builder = FeatureMatrixBuilder::new();
/// builder.set_flag(SourceId::new(0), "PubYear=2009");
/// builder.set_flag(SourceId::new(0), "Citations=High");
/// builder.set_flag(SourceId::new(1), "Study=GWAS");
/// let features = builder.build(2);
///
/// assert_eq!(features.num_features(), 3);
/// assert_eq!(features.features_of(SourceId::new(0)).len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FeatureMatrix {
    rows: Vec<Vec<(FeatureId, FeatureValue)>>,
    features: Interner<FeatureId>,
}

impl FeatureMatrix {
    /// A feature matrix with no features for `num_sources` sources (the "Sources-only"
    /// configuration of the paper).
    pub fn empty(num_sources: usize) -> Self {
        Self {
            rows: vec![Vec::new(); num_sources],
            features: Interner::new(),
        }
    }

    /// Number of distinct features `|K|`.
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// Number of sources covered.
    pub fn num_sources(&self) -> usize {
        self.rows.len()
    }

    /// Sparse feature vector of source `s`.
    pub fn features_of(&self, s: SourceId) -> &[(FeatureId, FeatureValue)] {
        self.rows.get(s.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Value of feature `k` for source `s` (0.0 when unset).
    pub fn value(&self, s: SourceId, k: FeatureId) -> FeatureValue {
        self.features_of(s)
            .iter()
            .find(|(f, _)| *f == k)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }

    /// Name behind a feature handle.
    pub fn feature_name(&self, k: FeatureId) -> Option<&str> {
        self.features.name(k)
    }

    /// Handle of a named feature.
    pub fn feature_id(&self, name: &str) -> Option<FeatureId> {
        self.features.get(name)
    }

    /// Iterates over all `(handle, name)` feature pairs.
    pub fn feature_names(&self) -> impl Iterator<Item = (FeatureId, &str)> + '_ {
        self.features.iter()
    }

    /// Dot product of source `s`'s feature vector with a dense weight vector indexed by
    /// feature handle. This is the `Σ_k w_k f_{s,k}` term of Equation 3.
    pub fn dot(&self, s: SourceId, feature_weights: &[f64]) -> f64 {
        self.features_of(s)
            .iter()
            .map(|(k, v)| feature_weights.get(k.index()).copied().unwrap_or(0.0) * v)
            .sum()
    }

    /// Total number of non-zero feature values (the "# Feature Values" row of Table 1).
    pub fn num_feature_values(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Restricts the matrix to a subset of sources, renumbering them densely in the order
    /// given. Companion of [`crate::Dataset::restrict_sources`].
    pub fn restrict_sources(&self, keep: &[SourceId]) -> FeatureMatrix {
        let rows = keep.iter().map(|s| self.features_of(*s).to_vec()).collect();
        FeatureMatrix {
            rows,
            features: self.features.clone(),
        }
    }

    /// Borrows the sparse rows for columnar serialization (`crate::snapshot`).
    pub(crate) fn rows(&self) -> &[Vec<(FeatureId, FeatureValue)>] {
        &self.rows
    }

    /// Borrows the feature vocabulary for columnar serialization (`crate::snapshot`).
    pub(crate) fn interner(&self) -> &Interner<FeatureId> {
        &self.features
    }

    /// Assembles a matrix directly from deserialized rows and vocabulary
    /// (`crate::snapshot`).
    pub(crate) fn from_parts(
        rows: Vec<Vec<(FeatureId, FeatureValue)>>,
        features: Interner<FeatureId>,
    ) -> Self {
        Self { rows, features }
    }
}

/// Incremental builder for a [`FeatureMatrix`].
#[derive(Debug, Clone, Default)]
pub struct FeatureMatrixBuilder {
    rows: Vec<Vec<(FeatureId, FeatureValue)>>,
    features: Interner<FeatureId>,
}

impl FeatureMatrixBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn row_mut(&mut self, s: SourceId) -> &mut Vec<(FeatureId, FeatureValue)> {
        if s.index() >= self.rows.len() {
            self.rows.resize(s.index() + 1, Vec::new());
        }
        &mut self.rows[s.index()]
    }

    /// Sets a numeric feature value for a source, overwriting any previous value.
    pub fn set(&mut self, s: SourceId, feature: &str, value: FeatureValue) {
        let k = self.features.intern(feature);
        let row = self.row_mut(s);
        if let Some(slot) = row.iter_mut().find(|(f, _)| *f == k) {
            slot.1 = value;
        } else {
            row.push((k, value));
        }
    }

    /// Sets a Boolean indicator feature (value `1.0`).
    pub fn set_flag(&mut self, s: SourceId, feature: &str) {
        self.set(s, feature, 1.0);
    }

    /// Discretizes a numeric quantity into a Boolean indicator named
    /// `"{name}={bucket}"`, where `bucket` is the label of the first threshold the value
    /// falls under (or the last label otherwise). Mirrors the paper's discretization of
    /// Alexa traffic statistics into `High` / `Low` indicators.
    ///
    /// `thresholds` is a list of `(upper_bound, label)` pairs evaluated in order;
    /// `last_label` is used when the value exceeds every bound.
    pub fn set_bucketed(
        &mut self,
        s: SourceId,
        name: &str,
        value: f64,
        thresholds: &[(f64, &str)],
        last_label: &str,
    ) {
        let label = thresholds
            .iter()
            .find(|(bound, _)| value <= *bound)
            .map(|(_, label)| *label)
            .unwrap_or(last_label);
        self.set_flag(s, &format!("{name}={label}"));
    }

    /// Number of features interned so far.
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// Finalizes into a [`FeatureMatrix`] covering at least `num_sources` sources.
    pub fn build(mut self, num_sources: usize) -> FeatureMatrix {
        if self.rows.len() < num_sources {
            self.rows.resize(num_sources, Vec::new());
        }
        FeatureMatrix {
            rows: self.rows,
            features: self.features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_has_no_features() {
        let m = FeatureMatrix::empty(3);
        assert_eq!(m.num_features(), 0);
        assert_eq!(m.num_sources(), 3);
        assert!(m.features_of(SourceId::new(1)).is_empty());
        assert_eq!(m.num_feature_values(), 0);
    }

    #[test]
    fn builder_sets_and_overwrites() {
        let mut b = FeatureMatrixBuilder::new();
        let s = SourceId::new(0);
        b.set(s, "citations", 34.0);
        b.set(s, "citations", 128.0);
        b.set_flag(s, "Study=GWAS");
        let m = b.build(1);
        assert_eq!(m.num_features(), 2);
        let cit = m.feature_id("citations").unwrap();
        assert_eq!(m.value(s, cit), 128.0);
        assert_eq!(m.value(s, m.feature_id("Study=GWAS").unwrap()), 1.0);
        assert_eq!(m.num_feature_values(), 2);
    }

    #[test]
    fn dot_product_matches_hand_computation() {
        let mut b = FeatureMatrixBuilder::new();
        let s = SourceId::new(0);
        b.set(s, "a", 2.0);
        b.set(s, "b", 3.0);
        let m = b.build(1);
        let mut weights = vec![0.0; m.num_features()];
        weights[m.feature_id("a").unwrap().index()] = 0.5;
        weights[m.feature_id("b").unwrap().index()] = -1.0;
        assert!((m.dot(s, &weights) - (2.0 * 0.5 - 3.0)).abs() < 1e-12);
        // Unknown source dots to zero.
        assert_eq!(m.dot(SourceId::new(9), &weights), 0.0);
    }

    #[test]
    fn bucketing_picks_first_matching_threshold() {
        let mut b = FeatureMatrixBuilder::new();
        let thresholds = [(10.0, "Low"), (100.0, "Medium")];
        b.set_bucketed(SourceId::new(0), "Citations", 5.0, &thresholds, "High");
        b.set_bucketed(SourceId::new(1), "Citations", 50.0, &thresholds, "High");
        b.set_bucketed(SourceId::new(2), "Citations", 500.0, &thresholds, "High");
        let m = b.build(3);
        assert_eq!(
            m.value(SourceId::new(0), m.feature_id("Citations=Low").unwrap()),
            1.0
        );
        assert_eq!(
            m.value(SourceId::new(1), m.feature_id("Citations=Medium").unwrap()),
            1.0
        );
        assert_eq!(
            m.value(SourceId::new(2), m.feature_id("Citations=High").unwrap()),
            1.0
        );
    }

    #[test]
    fn restrict_sources_reorders_rows() {
        let mut b = FeatureMatrixBuilder::new();
        b.set_flag(SourceId::new(0), "x");
        b.set_flag(SourceId::new(2), "y");
        let m = b.build(3);
        let r = m.restrict_sources(&[SourceId::new(2), SourceId::new(0)]);
        assert_eq!(r.num_sources(), 2);
        assert_eq!(r.value(SourceId::new(0), m.feature_id("y").unwrap()), 1.0);
        assert_eq!(r.value(SourceId::new(1), m.feature_id("x").unwrap()), 1.0);
    }

    #[test]
    fn build_pads_missing_sources() {
        let mut b = FeatureMatrixBuilder::new();
        b.set_flag(SourceId::new(0), "x");
        let m = b.build(5);
        assert_eq!(m.num_sources(), 5);
        assert!(m.features_of(SourceId::new(4)).is_empty());
    }
}
