//! Deterministic multi-threading primitives shared by the training stack.
//!
//! Everything here runs on the process-wide persistent [`WorkerPool`] (see
//! [`crate::pool`]) — no external dependencies — and is designed around one invariant:
//! **results are bitwise-identical at any thread count**. Work is partitioned into a
//! fixed chunk grid that does not depend on how many threads execute it, every chunk's
//! computation and output slot depend only on the chunk index, and all floating-point
//! reductions happen on the caller's thread in chunk-index order. Threads only ever
//! change *wall-clock time*, never *answers*.
//!
//! The thread count is resolved from the `SLIMFAST_THREADS` environment variable
//! (falling back to [`std::thread::available_parallelism`]); callers can override it
//! explicitly, which is what the determinism tests do to compare one- and four-thread
//! runs inside a single process.
//!
//! # Lanes versus threads
//!
//! A *requested* thread count is a logical knob; the number of OS lanes a region
//! actually runs on is clamped by [`max_lanes`] (the machine's available parallelism).
//! Running more lanes than cores can only add context-switch cost — it can never change
//! results, because the chunk grid is fixed — so the executor refuses to do it. On a
//! single-core machine `SLIMFAST_THREADS=4` therefore costs exactly nothing over
//! `SLIMFAST_THREADS=1`. Small inputs are also run inline on the caller so tiny fits
//! never pay a pool wakeup: [`for_each_slice_mut`] inlines buffers under
//! [`INLINE_MIN_ITEMS`] items, and the SGD engine inlines batches whose chunk grids
//! have fewer than `2 ×` the lane count. [`map_parts`] parts are coarse by nature
//! (whole fits, eval-grid cells), so one part per lane already amortizes the wakeup
//! and no extra guard applies.

use std::cell::Cell;
use std::sync::{Mutex, OnceLock};

pub use crate::pool::WorkerPool;

/// Name of the environment variable controlling the default worker count.
pub const THREADS_ENV: &str = "SLIMFAST_THREADS";

/// Below this many underlying items (claims, posterior slots, …) a parallel region runs
/// inline on the caller's thread regardless of the requested thread count: the work is
/// too small to amortize even a single pool wakeup. Callers that know their item count
/// (not just their chunk count) apply it — e.g. the sharded E-step.
pub const INLINE_MIN_ITEMS: usize = 4096;

thread_local! {
    /// Set while the current thread is executing work on behalf of an executor — a
    /// pool worker lane or the caller lane of a parallel region. Auto-resolved
    /// thread counts collapse to 1 inside, so nested parallel regions (an eval-grid
    /// worker running a fit whose E-step would otherwise request its own lanes) run
    /// inline instead of oversubscribing the machine quadratically. Purely a
    /// scheduling concern: results never depend on thread counts.
    static IN_EXECUTOR_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with the current thread marked as an executor worker (restoring the
/// previous state afterwards).
pub(crate) fn as_worker<R>(f: impl FnOnce() -> R) -> R {
    IN_EXECUTOR_WORKER.with(|flag| {
        let previous = flag.replace(true);
        let result = f();
        flag.set(previous);
        result
    })
}

/// Resolves a requested thread count: `0` means "auto" — read [`THREADS_ENV`], then
/// fall back to the machine's available parallelism. Always returns at least 1.
/// Auto-resolution inside an executor worker returns 1 (see the nesting guard above);
/// explicit non-zero requests are always honored.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if IN_EXECUTOR_WORKER.with(Cell::get) {
        return 1;
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available_parallelism()
}

/// The default thread count of this process (the `SLIMFAST_THREADS` /
/// available-parallelism resolution with no explicit override).
pub fn num_threads() -> usize {
    resolve_threads(0)
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The machine's available parallelism (cached): the hard ceiling on how many OS lanes
/// any parallel region will actually run, whatever thread count was requested. The
/// fixed chunk grid makes the clamp invisible in results; it only removes the
/// context-switch cost of oversubscription.
pub fn max_lanes() -> usize {
    static MAX_LANES: OnceLock<usize> = OnceLock::new();
    *MAX_LANES.get_or_init(available_parallelism)
}

/// The number of execution lanes a region with `num_tasks` chunks uses when `threads`
/// logical workers were requested: at least 1, at most the task count, at most
/// [`max_lanes`].
pub fn execution_lanes(threads: usize, num_tasks: usize) -> usize {
    threads.max(1).min(num_tasks.max(1)).min(max_lanes())
}

/// Runs `f(part)` for every part index in `0..num_parts` on up to `threads` workers and
/// returns the results **in part order**.
///
/// The part grid is fixed by the caller, each part's result lands in its own slot, and
/// the slots are collected in part order — so results are independent of the lane
/// count and of the pool's dynamic scheduling. Parts are assumed coarse (the callers
/// fan out whole fits and eval-grid cells), so any multi-part grid with more than one
/// effective lane goes to the pool; single-lane (or single-part) requests run inline on
/// the caller's thread without touching it.
pub fn map_parts<R, F>(num_parts: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let lanes = execution_lanes(threads, num_parts);
    if lanes <= 1 {
        return (0..num_parts).map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..num_parts).map(|_| Mutex::new(None)).collect();
    WorkerPool::global().run(num_parts, lanes, |part| {
        *slots[part].lock().expect("part slot") = Some(f(part));
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("part slot")
                .expect("every part produces a result")
        })
        .collect()
}

/// Splits `data` into consecutive mutable slices at the given boundaries (a cumulative
/// offset array of length `parts + 1`, like a CSR offset vector) and runs
/// `f(part, slice)` for each on up to `threads` workers.
///
/// Writes are disjoint by construction, so the result is deterministic regardless of
/// scheduling. Used to shard E-step posterior computation over object ranges. Buffers
/// below [`INLINE_MIN_ITEMS`] items run inline on the caller's thread without touching
/// the pool: under that size even a single wakeup costs more than the scan.
pub fn for_each_slice_mut<T, F>(data: &mut [T], boundaries: &[usize], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let num_parts = boundaries.len().saturating_sub(1);
    if num_parts == 0 {
        return;
    }
    debug_assert_eq!(boundaries[0], 0);
    debug_assert_eq!(
        *boundaries.last().expect("non-empty boundaries"),
        data.len()
    );
    let lanes = execution_lanes(threads, num_parts);
    if lanes <= 1 || data.len() < INLINE_MIN_ITEMS {
        let mut rest = data;
        for part in 0..num_parts {
            let len = boundaries[part + 1] - boundaries[part];
            let (head, tail) = rest.split_at_mut(len);
            f(part, head);
            rest = tail;
        }
        return;
    }
    // Carve the buffer into per-part mutable slices up front; each task takes exactly
    // its own slice, so writes stay disjoint under dynamic scheduling.
    let mut parts: Vec<Mutex<Option<&mut [T]>>> = Vec::with_capacity(num_parts);
    let mut rest = data;
    for part in 0..num_parts {
        let len = boundaries[part + 1] - boundaries[part];
        let (head, tail) = rest.split_at_mut(len);
        parts.push(Mutex::new(Some(head)));
        rest = tail;
    }
    WorkerPool::global().run(num_parts, lanes, |part| {
        let slice = parts[part]
            .lock()
            .expect("part slice")
            .take()
            .expect("each part is claimed once");
        f(part, slice);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_parts_preserves_order_at_any_thread_count() {
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = map_parts(37, threads, |i| i * i);
            assert_eq!(got, expect, "threads = {threads}");
        }
        assert!(map_parts(0, 4, |i| i).is_empty());
    }

    #[test]
    fn map_parts_float_reduction_is_bitwise_stable() {
        // Sum within parts, reduce in part order: the float result must not depend on
        // the worker count.
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let sum_with = |threads: usize| -> f64 {
            let chunk = 128;
            let parts = data.len().div_ceil(chunk);
            map_parts(parts, threads, |p| {
                data[p * chunk..((p + 1) * chunk).min(data.len())]
                    .iter()
                    .sum::<f64>()
            })
            .into_iter()
            .sum()
        };
        let reference = sum_with(1);
        for threads in [2, 3, 4, 7] {
            assert_eq!(reference.to_bits(), sum_with(threads).to_bits());
        }
    }

    #[test]
    fn for_each_slice_mut_writes_disjoint_ranges() {
        let boundaries = [0usize, 3, 3, 10, 16];
        for threads in [1, 2, 4] {
            let mut data = vec![0usize; 16];
            for_each_slice_mut(&mut data, &boundaries, threads, |part, slice| {
                for v in slice.iter_mut() {
                    *v = part + 1;
                }
            });
            let expect: Vec<usize> = (0..16)
                .map(|i| match i {
                    0..=2 => 1,
                    3..=9 => 3,
                    _ => 4,
                })
                .collect();
            assert_eq!(data, expect, "threads = {threads}");
        }
    }

    #[test]
    fn for_each_slice_mut_parallel_path_matches_inline() {
        // Large enough to clear INLINE_MIN_ITEMS so multi-lane machines take the pool
        // path; the results must match the inline computation exactly.
        let n = 2 * INLINE_MIN_ITEMS;
        let boundaries: Vec<usize> = (0..=64).map(|p| p * n / 64).collect();
        let run = |threads: usize| {
            let mut data = vec![0.0f64; n];
            for_each_slice_mut(&mut data, &boundaries, threads, |part, slice| {
                for (i, v) in slice.iter_mut().enumerate() {
                    *v = (part * 31 + i) as f64 * 0.5;
                }
            });
            data
        };
        let reference = run(1);
        for threads in [2, 4, 16] {
            assert_eq!(reference, run(threads), "threads = {threads}");
        }
    }

    #[test]
    fn resolve_threads_prefers_explicit_requests() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn execution_lanes_clamp_to_grid_and_machine() {
        assert_eq!(execution_lanes(4, 1), 1);
        assert!(execution_lanes(4, 100) <= max_lanes());
        assert!(execution_lanes(0, 0) >= 1);
        assert!(max_lanes() >= 1);
    }
}
