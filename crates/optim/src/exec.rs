//! Deterministic multi-threading primitives shared by the training stack.
//!
//! Everything here is built on `std::thread::scope` — no external dependencies — and is
//! designed around one invariant: **results are bitwise-identical at any thread count**.
//! Work is partitioned into a fixed chunk grid that does not depend on how many threads
//! execute it, chunks are assigned to workers round-robin, and all floating-point
//! reductions happen on the caller's thread in chunk-index order. Threads only ever
//! change *wall-clock time*, never *answers*.
//!
//! The thread count is resolved from the `SLIMFAST_THREADS` environment variable
//! (falling back to [`std::thread::available_parallelism`]); callers can override it
//! explicitly, which is what the determinism tests do to compare one- and four-thread
//! runs inside a single process.

use std::cell::Cell;

/// Name of the environment variable controlling the default worker count.
pub const THREADS_ENV: &str = "SLIMFAST_THREADS";

thread_local! {
    /// Set while the current thread is executing work on behalf of an executor — a
    /// spawned worker lane or the caller lane of a parallel region. Auto-resolved
    /// thread counts collapse to 1 inside, so nested parallel regions (an eval-grid
    /// worker running a fit whose E-step would otherwise spawn its own workers) run
    /// inline instead of oversubscribing the machine quadratically. Purely a
    /// scheduling concern: results never depend on thread counts.
    static IN_EXECUTOR_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with the current thread marked as an executor worker (restoring the
/// previous state afterwards).
pub(crate) fn as_worker<R>(f: impl FnOnce() -> R) -> R {
    IN_EXECUTOR_WORKER.with(|flag| {
        let previous = flag.replace(true);
        let result = f();
        flag.set(previous);
        result
    })
}

/// Resolves a requested thread count: `0` means "auto" — read [`THREADS_ENV`], then
/// fall back to the machine's available parallelism. Always returns at least 1.
/// Auto-resolution inside an executor worker returns 1 (see the nesting guard above);
/// explicit non-zero requests are always honored.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if IN_EXECUTOR_WORKER.with(Cell::get) {
        return 1;
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The default thread count of this process (the `SLIMFAST_THREADS` /
/// available-parallelism resolution with no explicit override).
pub fn num_threads() -> usize {
    resolve_threads(0)
}

/// Runs `f(part)` for every part index in `0..num_parts` on up to `threads` workers and
/// returns the results **in part order**.
///
/// Parts are assigned to workers statically (worker `t` takes parts `t, t + T, ...`),
/// so the partitioning — and therefore any floating-point work done inside one part —
/// is independent of the thread count. With `threads <= 1` (or a single part) the
/// closure runs inline on the caller's thread.
pub fn map_parts<R, F>(num_parts: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(num_parts.max(1));
    if threads <= 1 || num_parts <= 1 {
        return (0..num_parts).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(num_parts);
    slots.resize_with(num_parts, || None);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (1..threads)
            .map(|t| {
                scope.spawn(move || {
                    as_worker(|| {
                        let mut out = Vec::new();
                        let mut part = t;
                        while part < num_parts {
                            out.push((part, f(part)));
                            part += threads;
                        }
                        out
                    })
                })
            })
            .collect();
        // The caller's thread is worker 0.
        as_worker(|| {
            let mut part = 0;
            while part < num_parts {
                slots[part] = Some(f(part));
                part += threads;
            }
        });
        for handle in handles {
            for (part, result) in handle.join().expect("executor worker panicked") {
                slots[part] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every part produces a result"))
        .collect()
}

/// Splits `data` into consecutive mutable slices at the given boundaries (a cumulative
/// offset array of length `parts + 1`, like a CSR offset vector) and runs
/// `f(part, slice)` for each on up to `threads` workers.
///
/// Writes are disjoint by construction, so the result is deterministic regardless of
/// scheduling. Used to shard E-step posterior computation over object ranges.
pub fn for_each_slice_mut<T, F>(data: &mut [T], boundaries: &[usize], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let num_parts = boundaries.len().saturating_sub(1);
    if num_parts == 0 {
        return;
    }
    debug_assert_eq!(boundaries[0], 0);
    debug_assert_eq!(
        *boundaries.last().expect("non-empty boundaries"),
        data.len()
    );
    let threads = threads.max(1).min(num_parts);
    if threads <= 1 || num_parts <= 1 {
        let mut rest = data;
        for part in 0..num_parts {
            let len = boundaries[part + 1] - boundaries[part];
            let (head, tail) = rest.split_at_mut(len);
            f(part, head);
            rest = tail;
        }
        return;
    }
    // Carve the buffer into per-part mutable slices up front, then distribute them.
    let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(num_parts);
    let mut rest = data;
    for part in 0..num_parts {
        let len = boundaries[part + 1] - boundaries[part];
        let (head, tail) = rest.split_at_mut(len);
        parts.push((part, head));
        rest = tail;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut lanes: Vec<Vec<(usize, &mut [T])>> = Vec::with_capacity(threads);
        lanes.resize_with(threads, Vec::new);
        for (i, part) in parts.into_iter().enumerate() {
            lanes[i % threads].push(part);
        }
        let mut lanes = lanes.into_iter();
        let own = lanes.next().expect("at least one lane");
        for lane in lanes {
            scope.spawn(move || {
                as_worker(|| {
                    for (part, slice) in lane {
                        f(part, slice);
                    }
                })
            });
        }
        as_worker(|| {
            for (part, slice) in own {
                f(part, slice);
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_parts_preserves_order_at_any_thread_count() {
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = map_parts(37, threads, |i| i * i);
            assert_eq!(got, expect, "threads = {threads}");
        }
        assert!(map_parts(0, 4, |i| i).is_empty());
    }

    #[test]
    fn map_parts_float_reduction_is_bitwise_stable() {
        // Sum within parts, reduce in part order: the float result must not depend on
        // the worker count.
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let sum_with = |threads: usize| -> f64 {
            let chunk = 128;
            let parts = data.len().div_ceil(chunk);
            map_parts(parts, threads, |p| {
                data[p * chunk..((p + 1) * chunk).min(data.len())]
                    .iter()
                    .sum::<f64>()
            })
            .into_iter()
            .sum()
        };
        let reference = sum_with(1);
        for threads in [2, 3, 4, 7] {
            assert_eq!(reference.to_bits(), sum_with(threads).to_bits());
        }
    }

    #[test]
    fn for_each_slice_mut_writes_disjoint_ranges() {
        let boundaries = [0usize, 3, 3, 10, 16];
        for threads in [1, 2, 4] {
            let mut data = vec![0usize; 16];
            for_each_slice_mut(&mut data, &boundaries, threads, |part, slice| {
                for v in slice.iter_mut() {
                    *v = part + 1;
                }
            });
            let expect: Vec<usize> = (0..16)
                .map(|i| match i {
                    0..=2 => 1,
                    3..=9 => 3,
                    _ => 4,
                })
                .collect();
            assert_eq!(data, expect, "threads = {threads}");
        }
    }

    #[test]
    fn resolve_threads_prefers_explicit_requests() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert!(num_threads() >= 1);
    }
}
