//! The process-wide persistent worker pool behind every parallel region in the
//! workspace.
//!
//! Before this pool existed, `exec::map_parts`, the sharded E-step, and the mini-batch
//! SGD lanes each spawned fresh `std::thread::scope` threads per call — a pool spawn per
//! EM iteration, per eval-grid cell, and per `minimize` call. The pool is spawned once
//! per process instead: workers park on a condvar and are woken per *job*, so the
//! steady-state cost of a parallel region is one mutex-protected publish and one
//! completion wait, not `threads - 1` OS thread spawns.
//!
//! # Determinism
//!
//! The pool schedules **dynamically** (workers claim task indices from a shared atomic
//! counter), which is safe precisely because of the executor contract layered above it:
//! work arrives as a *fixed task grid* whose per-task computation and output slot depend
//! only on the task index, and all floating-point reductions happen on the caller's
//! thread in task-index order after the job completes. Which lane runs a task — and how
//! many lanes exist — can therefore never change results, only wall-clock time.
//!
//! # Lifecycle
//!
//! [`WorkerPool::global`] returns the singleton. The pool grows on demand (a job asking
//! for more lanes than have ever been requested spawns the difference) and never
//! shrinks; workers are detached and live until process exit. Changing
//! `SLIMFAST_THREADS` between fits simply changes how many of the existing lanes the
//! next job asks for — the pool itself survives, which the lifecycle tests assert.
//!
//! # Panics
//!
//! A panic inside a task is caught on the executing lane, the job is still driven to
//! completion (remaining tasks run normally), and the first payload is re-raised on the
//! submitting caller's thread. Workers never unwind out of their loop, so one poisoned
//! objective cannot strand a barrier or kill a lane for subsequent jobs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::exec::as_worker;

/// One published unit of pool work: a fixed grid of `num_tasks` tasks executed by the
/// submitting caller plus any idle pool workers.
struct Job {
    /// Type-erased pointer to the caller's task closure. A raw pointer (not a
    /// lifetime-transmuted reference) because workers may hold the `Arc<Job>` after the
    /// submitting caller returned and the closure died — a dangling *pointer* that is
    /// never dereferenced is fine, a dangling reference would not be.
    ///
    /// SAFETY contract: the pointer is only dereferenced while executing a claimed task
    /// index below `num_tasks`, every claimed task bumps `completed` after running, and
    /// the submitting caller blocks until `completed == num_tasks` before returning — so
    /// the pointee is alive for every dereference. A worker that wakes late can only
    /// observe an exhausted task counter and never touches `run`.
    run: *const (dyn Fn(usize) + Sync),
    /// Size of the fixed task grid.
    num_tasks: usize,
    /// Next unclaimed task index (may overshoot `num_tasks`).
    next: AtomicUsize,
    /// Helper workers this job admits (`lanes - 1`); woken workers beyond the cap skip
    /// the job, so the requested lane count really bounds concurrent execution.
    max_helpers: usize,
    /// Helper admission counter (may overshoot `max_helpers`).
    helpers: AtomicUsize,
    /// Completed-task count. Each completion is one `AcqRel` RMW — not a lock — so the
    /// per-chunk cost of a job stays contention-free; only the final finisher takes
    /// `done` to wake the caller.
    completed: AtomicUsize,
    /// Set by the final finisher under the lock that pairs with `done_signal`.
    done: Mutex<bool>,
    /// Signalled when the last task completes.
    done_signal: Condvar,
    /// First panic payload raised inside a task, re-raised on the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `Job` is shared across threads only through `Arc`; every field but `run` is
// a thread-safe primitive, and `run` points at a `Sync` closure that is only
// dereferenced under the liveness contract documented on the field.
#[allow(unsafe_code)]
unsafe impl Send for Job {}
#[allow(unsafe_code)]
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs tasks until the grid is exhausted. Called by the submitting
    /// caller and by any pool worker that picked the job up.
    fn execute(&self) {
        loop {
            let task = self.next.fetch_add(1, Ordering::Relaxed);
            if task >= self.num_tasks {
                return;
            }
            // SAFETY: `task < num_tasks`, so the submitting caller is still blocked in
            // `wait_done` (it needs this task's completion bump) and the closure behind
            // `run` is alive for the whole call — see the contract on `Job::run`.
            #[allow(unsafe_code)]
            let run = unsafe { &*self.run };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(task)));
            if let Err(payload) = result {
                self.panic
                    .lock()
                    .expect("job panic slot")
                    .get_or_insert(payload);
            }
            // `AcqRel` chains every finisher's writes into the release sequence, so the
            // final finisher — and, through the `done` mutex, the waiting caller —
            // happens-after all task effects.
            let finished = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
            if finished == self.num_tasks {
                let mut done = self.done.lock().expect("job done flag");
                *done = true;
                self.done_signal.notify_all();
            }
        }
    }

    /// Blocks until every task of the grid has completed (on whichever lane ran it).
    fn wait_done(&self) {
        let mut done = self.done.lock().expect("job done flag");
        while !*done {
            done = self.done_signal.wait(done).expect("job done flag");
        }
    }
}

/// Mutable pool state shared between the submitting callers and the parked workers.
struct PoolState {
    /// Bumped on every published job; workers wake when it moves past what they saw.
    epoch: u64,
    /// The currently published job, if any.
    job: Option<Arc<Job>>,
    /// Number of helper workers spawned so far (the pool only ever grows).
    workers: usize,
}

/// A persistent, deterministic worker pool. See the module docs for the contract; use
/// [`WorkerPool::global`] to obtain the process-wide instance.
pub struct WorkerPool {
    state: Mutex<PoolState>,
    work_signal: Condvar,
}

/// Parked-worker loop: wait for a new job epoch, help drain the job, repeat forever.
fn worker_loop(pool: &'static WorkerPool, mut seen_epoch: u64) {
    loop {
        let job = {
            let mut state = pool.state.lock().expect("pool state");
            while state.epoch == seen_epoch {
                state = pool.work_signal.wait(state).expect("pool state");
            }
            seen_epoch = state.epoch;
            state.job.clone()
        };
        if let Some(job) = job {
            // Admission cap: `notify_all` wakes every parked worker, but only the first
            // `max_helpers` of them join the job — the rest park again, so a job's
            // requested lane count really limits how much of the machine it uses.
            if job.helpers.fetch_add(1, Ordering::Relaxed) < job.max_helpers {
                as_worker(|| job.execute());
            }
        }
    }
}

impl WorkerPool {
    /// The process-wide pool, created (empty — workers spawn on first demand) on first
    /// use.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                workers: 0,
            }),
            work_signal: Condvar::new(),
        })
    }

    /// Number of helper workers currently alive (excluding submitting callers, which
    /// always participate as a lane of their own job).
    pub fn helper_workers(&self) -> usize {
        self.state.lock().expect("pool state").workers
    }

    /// Runs `f(task)` for every task in `0..num_tasks` on up to `lanes` lanes (the
    /// calling thread plus `lanes - 1` pool workers) and returns once **all** tasks have
    /// completed.
    ///
    /// `lanes` is taken literally apart from being clamped to `[1, num_tasks]`; the
    /// higher-level wrappers in [`crate::exec`] are responsible for policy (resolving
    /// `SLIMFAST_THREADS`, clamping to the machine's parallelism, and inlining small
    /// grids). With a single lane the tasks run inline on the caller without touching
    /// pool state. The first panic raised inside a task is re-raised here after the job
    /// drains.
    pub fn run<F: Fn(usize) + Sync>(&'static self, num_tasks: usize, lanes: usize, f: F) {
        if num_tasks == 0 {
            return;
        }
        let lanes = lanes.max(1).min(num_tasks);
        if lanes == 1 {
            for task in 0..num_tasks {
                f(task);
            }
            return;
        }
        // Type-erase the closure into a raw pointer, transmuting away its borrow
        // lifetime (`*const dyn ...` defaults to a `'static` pointee bound). SAFETY:
        // only the pointee's lifetime bound changes — the pointer itself is untouched —
        // and `wait_done` below does not return until every claimed task has finished
        // executing, which upholds the dereference contract on `Job::run`.
        let f_ptr = (&f as &(dyn Fn(usize) + Sync + '_)) as *const (dyn Fn(usize) + Sync + '_);
        #[allow(unsafe_code)]
        let run = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(
                f_ptr,
            )
        };
        let job = Arc::new(Job {
            run,
            num_tasks,
            next: AtomicUsize::new(0),
            max_helpers: lanes - 1,
            helpers: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            done: Mutex::new(false),
            done_signal: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut state = self.state.lock().expect("pool state");
            // Grow the pool to the requested lane count (never shrink). New workers
            // start from the pre-publish epoch so they pick this very job up.
            while state.workers < lanes - 1 {
                let seen_epoch = state.epoch;
                state.workers += 1;
                std::thread::Builder::new()
                    .name(format!("slimfast-pool-{}", state.workers))
                    .spawn(move || worker_loop(Self::global(), seen_epoch))
                    .expect("spawn pool worker");
            }
            state.epoch += 1;
            state.job = Some(Arc::clone(&job));
            // Wake only as many workers as the job admits: `notify_all` would stampede
            // every lane the pool ever grew to (they would lose the admission race and
            // re-park, pure context-switch churn on the per-mini-batch hot path). A
            // notification that lands on a worker still busy elsewhere is simply lost —
            // the submitting caller drains the job regardless.
            for _ in 0..lanes - 1 {
                self.work_signal.notify_one();
            }
        }
        // The caller is always a lane of its own job, so the job drains even if every
        // worker is busy helping someone else (concurrent submitters never deadlock,
        // they just get fewer helpers).
        as_worker(|| job.execute());
        job.wait_done();
        {
            let mut state = self.state.lock().expect("pool state");
            if state
                .job
                .as_ref()
                .is_some_and(|current| Arc::ptr_eq(current, &job))
            {
                state.job = None;
            }
        }
        let payload = job.panic.lock().expect("job panic slot").take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::resolve_threads;

    /// Runs a task grid on the global pool with explicit lanes (bypassing the
    /// machine-parallelism clamp of the `exec` wrappers, so multi-worker code paths are
    /// exercised even on single-core machines) and collects the results in task order.
    fn pooled_map(num_tasks: usize, lanes: usize, f: impl Fn(usize) -> f64 + Sync) -> Vec<f64> {
        let slots: Vec<Mutex<Option<f64>>> = (0..num_tasks).map(|_| Mutex::new(None)).collect();
        WorkerPool::global().run(num_tasks, lanes, |task| {
            *slots[task].lock().unwrap() = Some(f(task));
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("task ran"))
            .collect()
    }

    #[test]
    fn pool_results_are_identical_at_any_lane_count_and_the_pool_grows_once() {
        let data: Vec<f64> = (0..8192).map(|i| (i as f64).sin()).collect();
        let chunk = 64;
        let tasks = data.len() / chunk;
        let sum_chunk = |task: usize| data[task * chunk..(task + 1) * chunk].iter().sum::<f64>();
        let reference = pooled_map(tasks, 1, sum_chunk);
        for lanes in [2, 3, 4, 4, 2] {
            let got = pooled_map(tasks, lanes, sum_chunk);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&reference), bits(&got), "lanes = {lanes}");
        }
        // Reducing in task order after the job completes is bitwise-stable too.
        let total: f64 = reference.iter().sum();
        let total4: f64 = pooled_map(tasks, 4, sum_chunk).iter().sum();
        assert_eq!(total.to_bits(), total4.to_bits());
        // The pool grew to serve the largest request and never shrank.
        assert!(WorkerPool::global().helper_workers() >= 3);
    }

    #[test]
    fn nested_parallel_regions_collapse_to_one_thread_under_the_pool() {
        let observed: Vec<Mutex<usize>> = (0..8).map(|_| Mutex::new(0)).collect();
        WorkerPool::global().run(8, 4, |task| {
            // Every lane of a pool job — workers and the submitting caller alike — is
            // marked as an executor worker, so auto-resolved inner regions run inline.
            *observed[task].lock().unwrap() = resolve_threads(0);
        });
        for slot in &observed {
            assert_eq!(*slot.lock().unwrap(), 1);
        }
    }

    #[test]
    fn task_panics_propagate_and_leave_the_pool_usable() {
        let pool = WorkerPool::global();
        let result = std::panic::catch_unwind(|| {
            pool.run(64, 4, |task| {
                assert!(task != 33, "poisoned task");
            });
        });
        assert!(result.is_err(), "the task panic must reach the caller");
        // The job drained despite the panic; the next job runs normally on the same
        // workers.
        let after = pooled_map(16, 4, |task| task as f64);
        assert_eq!(after, (0..16).map(|t| t as f64).collect::<Vec<_>>());
    }

    #[test]
    fn lane_cap_bounds_participating_threads() {
        use std::collections::HashSet;
        // Grow the pool past the cap first, so extra parked workers exist to be turned
        // away by the admission counter.
        WorkerPool::global().run(16, 4, |_| {});
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        WorkerPool::global().run(64, 2, |_| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        let participants = seen.lock().unwrap().len();
        assert!(
            (1..=2).contains(&participants),
            "a 2-lane job ran on {participants} threads"
        );
    }

    #[test]
    fn single_lane_requests_run_inline() {
        // An inline run must execute every task on the caller's own thread — no job is
        // published and no worker participates. (Thread identity is the race-free way
        // to assert this: concurrent tests may legitimately grow the pool.)
        let caller = std::thread::current().id();
        let slots: Vec<Mutex<Option<f64>>> = (0..4).map(|_| Mutex::new(None)).collect();
        WorkerPool::global().run(4, 1, |task| {
            assert_eq!(std::thread::current().id(), caller);
            *slots[task].lock().unwrap() = Some(task as f64 * 2.0);
        });
        let got: Vec<f64> = slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("task ran"))
            .collect();
        assert_eq!(got, vec![0.0, 2.0, 4.0, 6.0]);
    }
}
