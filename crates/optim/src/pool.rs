//! The process-wide persistent worker pool behind every parallel region in the
//! workspace.
//!
//! Before this pool existed, `exec::map_parts`, the sharded E-step, and the mini-batch
//! SGD lanes each spawned fresh `std::thread::scope` threads per call — a pool spawn per
//! EM iteration, per eval-grid cell, and per `minimize` call. The pool is spawned once
//! per process instead: workers park on a condvar and are woken per *job*, so the
//! steady-state cost of a parallel region is one mutex-protected publish and one
//! completion wait, not `threads - 1` OS thread spawns.
//!
//! # The job queue
//!
//! Published jobs land in a small FIFO queue instead of a single slot. Each job carries
//! its own *lane reservation* (`max_helpers`): a woken worker scans the queue front to
//! back and joins the first job that still has unclaimed tasks **and** a free helper
//! slot, so two concurrent jobs — say a background model refit and a foreground sharded
//! ingest — overlap on disjoint lanes instead of serializing behind one publish slot.
//! Grid jobs are always driven by their submitting caller (which counts as a lane of its
//! own job and never waits on another job's lanes), so the queue cannot deadlock: every
//! job drains even if all workers are busy elsewhere.
//!
//! Two kinds of work go through the queue:
//!
//! * **Grid jobs** ([`WorkerPool::run`]) — a fixed task grid borrowed from the caller,
//!   executed by the caller plus up to `lanes - 1` helpers, completion awaited inline.
//! * **Background jobs** ([`WorkerPool::spawn`]) — an owned one-shot closure executed
//!   entirely by a pool worker; the caller gets a [`JobHandle`] to poll or join. The
//!   closure is *not* marked as an executor worker, so parallel regions inside it (e.g.
//!   the E-step of a background refit) submit their own grid jobs to this same queue
//!   and overlap with foreground work under the usual lane admission.
//!
//! # Determinism
//!
//! The pool schedules **dynamically** (workers claim task indices from a shared atomic
//! counter), which is safe precisely because of the executor contract layered above it:
//! work arrives as a *fixed task grid* whose per-task computation and output slot depend
//! only on the task index, and all floating-point reductions happen on the caller's
//! thread in task-index order after the job completes. Which lane runs a task — and how
//! many lanes exist — can therefore never change results, only wall-clock time.
//!
//! # Lifecycle
//!
//! [`WorkerPool::global`] returns the singleton. The pool grows on demand (a job asking
//! for more lanes than have ever been requested spawns the difference; background jobs
//! grow it so at least one worker exists per outstanding background job) and never
//! shrinks; workers are detached and live until process exit. Changing
//! `SLIMFAST_THREADS` between fits simply changes how many of the existing lanes the
//! next job asks for — the pool itself survives, which the lifecycle tests assert.
//!
//! # Panics
//!
//! A panic inside a task is caught on the executing lane, the job is still driven to
//! completion (remaining tasks run normally), and the first payload is re-raised on the
//! submitting caller's thread — for background jobs, on whoever calls
//! [`JobHandle::join`], while [`JobHandle::try_join`] returns the payload as a
//! [`JobPanic`] value for callers that supervise rather than propagate. Workers never
//! unwind out of their loop, so one poisoned objective cannot strand a barrier or kill
//! a lane for subsequent jobs; the pool's own bookkeeping locks ignore mutex
//! poisoning for the same reason.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::exec::as_worker;

/// Locks `mutex`, ignoring poisoning. The pool's bookkeeping mutexes are never held
/// across user code, so they cannot be left inconsistent by an unwind — but a panic
/// elsewhere on a lane must not turn every later lock of the same job into a second
/// panic. Fault-supervision callers rely on this: observing a crashed job is how
/// they *recover*, so the observation itself must be infallible.
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The work a [`Job`] executes per claimed task.
enum Work {
    /// Type-erased pointer to a borrowed task closure of a grid job. A raw pointer (not
    /// a lifetime-transmuted reference) because workers may hold the `Arc<Job>` after
    /// the submitting caller returned and the closure died — a dangling *pointer* that
    /// is never dereferenced is fine, a dangling reference would not be.
    ///
    /// SAFETY contract: the pointer is only dereferenced while executing a claimed task
    /// index below `num_tasks`, every claimed task bumps `completed` after running, and
    /// the submitting caller blocks until `completed == num_tasks` before returning — so
    /// the pointee is alive for every dereference. A worker that wakes late can only
    /// observe an exhausted task counter and never touches the pointer.
    Grid(*const (dyn Fn(usize) + Sync)),
    /// An owned one-shot closure of a background job (`num_tasks == 1`); taken by the
    /// single lane that claims task 0. Owned, so no liveness contract is needed.
    Owned(Mutex<Option<Box<dyn FnOnce() + Send>>>),
}

/// One published unit of pool work: a fixed grid of `num_tasks` tasks executed by the
/// submitting caller (grid jobs) and/or any idle pool workers.
struct Job {
    work: Work,
    /// Size of the fixed task grid.
    num_tasks: usize,
    /// Next unclaimed task index (may overshoot `num_tasks`).
    next: AtomicUsize,
    /// Lane reservation: helper workers this job admits (`lanes - 1` for grid jobs,
    /// `1` for background jobs). Woken workers beyond the cap skip the job, so the
    /// requested lane count really bounds concurrent execution.
    max_helpers: usize,
    /// Helper admission counter (may overshoot `max_helpers`).
    helpers: AtomicUsize,
    /// Completed-task count. Each completion is one `AcqRel` RMW — not a lock — so the
    /// per-chunk cost of a job stays contention-free; only the final finisher takes
    /// `done` to wake waiters.
    completed: AtomicUsize,
    /// Set by the final finisher under the lock that pairs with `done_signal`.
    done: Mutex<bool>,
    /// Signalled when the last task completes.
    done_signal: Condvar,
    /// First panic payload raised inside a task, re-raised on the caller / joiner.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `Job` is shared across threads only through `Arc`; every field but the
// `Work::Grid` pointer is a thread-safe primitive, and that pointer targets a `Sync`
// closure that is only dereferenced under the liveness contract documented on `Work`.
#[allow(unsafe_code)]
unsafe impl Send for Job {}
#[allow(unsafe_code)]
unsafe impl Sync for Job {}

impl Job {
    /// Whether every task of the grid has been claimed (not necessarily completed).
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.num_tasks
    }

    /// Whether a scanning worker may still join this job: unclaimed tasks remain and
    /// the lane reservation is not saturated.
    fn admissible(&self) -> bool {
        !self.exhausted() && self.helpers.load(Ordering::Relaxed) < self.max_helpers
    }

    /// Claims and runs tasks until the grid is exhausted. Called by the submitting
    /// caller (grid jobs) and by any pool worker that picked the job up.
    fn execute(&self) {
        loop {
            let task = self.next.fetch_add(1, Ordering::Relaxed);
            if task >= self.num_tasks {
                return;
            }
            let result = match &self.work {
                Work::Grid(run) => {
                    // SAFETY: `task < num_tasks`, so the submitting caller is still
                    // blocked in `wait_done` (it needs this task's completion bump) and
                    // the closure behind the pointer is alive for the whole call — see
                    // the contract on `Work::Grid`.
                    #[allow(unsafe_code)]
                    let run = unsafe { &**run };
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(task)))
                }
                Work::Owned(slot) => {
                    let f = lock_ignore_poison(slot)
                        .take()
                        .expect("background tasks are claimed exactly once");
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
                }
            };
            if let Err(payload) = result {
                lock_ignore_poison(&self.panic).get_or_insert(payload);
            }
            // `AcqRel` chains every finisher's writes into the release sequence, so the
            // final finisher — and, through the `done` mutex, the waiting caller —
            // happens-after all task effects.
            let finished = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
            if finished == self.num_tasks {
                let mut done = self.done.lock().expect("job done flag");
                *done = true;
                self.done_signal.notify_all();
            }
        }
    }

    /// Blocks until every task of the grid has completed (on whichever lane ran it).
    fn wait_done(&self) {
        let mut done = self.done.lock().expect("job done flag");
        while !*done {
            done = self.done_signal.wait(done).expect("job done flag");
        }
    }

    /// Whether every task has completed (non-blocking).
    fn is_done(&self) -> bool {
        *self.done.lock().expect("job done flag")
    }
}

/// The captured panic of a background job, returned by [`JobHandle::try_join`]
/// instead of being re-raised — the supervision half of fault-tolerant serving: a
/// crashed refit becomes a value the caller can log, count, and retry.
pub struct JobPanic {
    payload: Box<dyn std::any::Any + Send>,
}

impl JobPanic {
    /// The panic message, when the payload is the usual `&str` / `String` from
    /// `panic!`; a placeholder for exotic payloads.
    pub fn message(&self) -> &str {
        if let Some(s) = self.payload.downcast_ref::<&'static str>() {
            s
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s
        } else {
            "non-string panic payload"
        }
    }

    /// The raw panic payload, for callers that want to inspect or re-raise manually.
    pub fn into_payload(self) -> Box<dyn std::any::Any + Send> {
        self.payload
    }

    /// Re-raises the panic on the current thread (what [`JobHandle::join`] does).
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(self.payload)
    }
}

impl std::fmt::Debug for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPanic")
            .field("message", &self.message())
            .finish()
    }
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "background job panicked: {}", self.message())
    }
}

impl std::error::Error for JobPanic {}

/// A handle to a background job submitted with [`WorkerPool::spawn`].
///
/// Dropping the handle detaches the job (it still runs to completion on the pool);
/// [`JobHandle::join`] blocks until it finishes and re-raises any panic it produced,
/// while [`JobHandle::try_join`] hands the panic back as a [`JobPanic`] value so
/// supervising callers can treat a crashed job as a recoverable failure.
pub struct JobHandle {
    job: Arc<Job>,
}

impl JobHandle {
    /// Whether the background job has finished executing (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.job.is_done()
    }

    /// Blocks until the job completes. Returns `Err` with the captured panic if the
    /// job panicked, instead of re-raising it — the caller decides whether the crash
    /// is fatal. Poison-tolerant: a panic on the executing lane never turns this
    /// observation into a second panic.
    pub fn try_join(self) -> Result<(), JobPanic> {
        self.job.wait_done();
        match lock_ignore_poison(&self.job.panic).take() {
            Some(payload) => Err(JobPanic { payload }),
            None => Ok(()),
        }
    }

    /// Blocks until the job completes. Re-raises the job's panic, if it panicked.
    pub fn join(self) {
        if let Err(panic) = self.try_join() {
            panic.resume();
        }
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

/// Mutable pool state shared between the submitting callers and the parked workers.
struct PoolState {
    /// Bumped on every published job; workers wake when it moves past what they saw.
    epoch: u64,
    /// FIFO queue of published jobs. Grid jobs are removed by their submitting caller
    /// after the completion wait; background jobs by the worker that finishes them.
    queue: VecDeque<Arc<Job>>,
    /// Number of helper workers spawned so far (the pool only ever grows).
    workers: usize,
    /// Background jobs queued or executing; the pool keeps at least this many workers
    /// (plus one headroom lane) alive so background work can never be starved by the
    /// absence of helpers — grid jobs always have their caller, background jobs don't.
    background_active: usize,
}

/// A persistent, deterministic worker pool. See the module docs for the contract; use
/// [`WorkerPool::global`] to obtain the process-wide instance.
pub struct WorkerPool {
    state: Mutex<PoolState>,
    work_signal: Condvar,
}

/// Parked-worker loop: wait for a new job epoch, pick the first admissible job in FIFO
/// order, help drain it, rescan, park when the queue holds nothing admissible.
fn worker_loop(pool: &'static WorkerPool) {
    loop {
        let job = {
            let mut state = pool.state.lock().expect("pool state");
            loop {
                // FIFO scan with per-job admission: the first job that still has
                // unclaimed tasks and a free helper slot wins. `fetch_add` under the
                // pool lock cannot overshoot here (concurrent submitters don't bump
                // helper counts; only scanning workers do, serialized by this lock),
                // but the cap re-check keeps the invariant even if that changes.
                let picked = state.queue.iter().find_map(|job| {
                    if job.admissible()
                        && job.helpers.fetch_add(1, Ordering::Relaxed) < job.max_helpers
                    {
                        Some(Arc::clone(job))
                    } else {
                        None
                    }
                });
                if let Some(job) = picked {
                    break Some(job);
                }
                // Epoch snapshot taken before parking: a publish between the failed
                // scan and the wait bumps the epoch, so the re-check below rescans
                // instead of sleeping through the wakeup.
                let seen_epoch = state.epoch;
                state = pool.work_signal.wait(state).expect("pool state");
                if state.epoch == seen_epoch {
                    continue;
                }
            }
        };
        if let Some(job) = job {
            match &job.work {
                // Grid lanes are marked as executor workers so auto-resolved nested
                // regions inline instead of oversubscribing the machine.
                Work::Grid(_) => as_worker(|| job.execute()),
                // Background closures run unmarked: parallel regions inside them are
                // top-level work that should fan out over the pool like any caller's.
                Work::Owned(_) => {
                    job.execute();
                    let mut state = pool.state.lock().expect("pool state");
                    state.background_active -= 1;
                    if let Some(pos) = state.queue.iter().position(|j| Arc::ptr_eq(j, &job)) {
                        state.queue.remove(pos);
                    }
                }
            }
        }
    }
}

impl WorkerPool {
    /// The process-wide pool, created (empty — workers spawn on first demand) on first
    /// use.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool {
            state: Mutex::new(PoolState {
                epoch: 0,
                queue: VecDeque::new(),
                workers: 0,
                background_active: 0,
            }),
            work_signal: Condvar::new(),
        })
    }

    /// Number of helper workers currently alive (excluding submitting callers, which
    /// always participate as a lane of their own job).
    pub fn helper_workers(&self) -> usize {
        self.state.lock().expect("pool state").workers
    }

    /// Grows the pool to `target` helper workers (never shrinks). Caller holds the lock.
    fn grow_locked(state: &mut PoolState, target: usize) {
        while state.workers < target {
            state.workers += 1;
            std::thread::Builder::new()
                .name(format!("slimfast-pool-{}", state.workers))
                .spawn(move || worker_loop(Self::global()))
                .expect("spawn pool worker");
        }
    }

    /// Publishes `job` at the back of the queue, growing the pool to `grow_to` workers
    /// and waking up to `wake` of them.
    fn publish(&'static self, job: &Arc<Job>, grow_to: usize, wake: usize) {
        let mut state = self.state.lock().expect("pool state");
        // New workers start from the pre-publish epoch so they pick this very job up.
        Self::grow_locked(&mut state, grow_to);
        state.epoch += 1;
        state.queue.push_back(Arc::clone(job));
        // Wake only as many workers as the job admits: `notify_all` would stampede
        // every lane the pool ever grew to (they would lose the admission race and
        // re-park, pure context-switch churn on the per-mini-batch hot path). A
        // notification that lands on a worker still busy elsewhere is simply lost —
        // grid jobs are drained by their caller regardless, and background jobs are
        // re-examined whenever any worker rescans the queue.
        for _ in 0..wake {
            self.work_signal.notify_one();
        }
    }

    /// Runs `f(task)` for every task in `0..num_tasks` on up to `lanes` lanes (the
    /// calling thread plus `lanes - 1` pool workers) and returns once **all** tasks have
    /// completed.
    ///
    /// `lanes` is taken literally apart from being clamped to `[1, num_tasks]`; the
    /// higher-level wrappers in [`crate::exec`] are responsible for policy (resolving
    /// `SLIMFAST_THREADS`, clamping to the machine's parallelism, and inlining small
    /// grids). With a single lane the tasks run inline on the caller without touching
    /// pool state. The first panic raised inside a task is re-raised here after the job
    /// drains.
    pub fn run<F: Fn(usize) + Sync>(&'static self, num_tasks: usize, lanes: usize, f: F) {
        if num_tasks == 0 {
            return;
        }
        let lanes = lanes.max(1).min(num_tasks);
        if lanes == 1 {
            for task in 0..num_tasks {
                f(task);
            }
            return;
        }
        // Type-erase the closure into a raw pointer, transmuting away its borrow
        // lifetime (`*const dyn ...` defaults to a `'static` pointee bound). SAFETY:
        // only the pointee's lifetime bound changes — the pointer itself is untouched —
        // and `wait_done` below does not return until every claimed task has finished
        // executing, which upholds the dereference contract on `Work::Grid`.
        let f_ptr = (&f as &(dyn Fn(usize) + Sync + '_)) as *const (dyn Fn(usize) + Sync + '_);
        #[allow(unsafe_code)]
        let run = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(
                f_ptr,
            )
        };
        let job = Arc::new(Job {
            work: Work::Grid(run),
            num_tasks,
            next: AtomicUsize::new(0),
            max_helpers: lanes - 1,
            helpers: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            done: Mutex::new(false),
            done_signal: Condvar::new(),
            panic: Mutex::new(None),
        });
        self.publish(&job, lanes - 1, lanes - 1);
        // The caller is always a lane of its own job, so the job drains even if every
        // worker is busy helping someone else (concurrent submitters never deadlock,
        // they just get fewer helpers).
        as_worker(|| job.execute());
        job.wait_done();
        {
            let mut state = self.state.lock().expect("pool state");
            if let Some(pos) = state.queue.iter().position(|j| Arc::ptr_eq(j, &job)) {
                state.queue.remove(pos);
            }
        }
        let payload = lock_ignore_poison(&job.panic).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Submits `f` as a background job: it runs to completion on a pool worker while
    /// the caller continues immediately. Returns a [`JobHandle`] to poll or join.
    ///
    /// The closure is **not** marked as an executor worker, so parallel regions inside
    /// it (a background refit's E-step, say) fan out over this same pool and overlap
    /// with foreground grid jobs under FIFO order and per-job lane admission. The pool
    /// grows so at least one worker exists per outstanding background job plus one
    /// headroom lane; a panicking closure poisons nothing — the payload is re-raised by
    /// [`JobHandle::join`], or swallowed if the handle was dropped.
    pub fn spawn(&'static self, f: impl FnOnce() + Send + 'static) -> JobHandle {
        let job = Arc::new(Job {
            work: Work::Owned(Mutex::new(Some(Box::new(f)))),
            num_tasks: 1,
            next: AtomicUsize::new(0),
            max_helpers: 1,
            helpers: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            done: Mutex::new(false),
            done_signal: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut state = self.state.lock().expect("pool state");
            state.background_active += 1;
            let target = state.background_active + 1;
            Self::grow_locked(&mut state, target);
            state.epoch += 1;
            state.queue.push_back(Arc::clone(&job));
            self.work_signal.notify_one();
        }
        JobHandle { job }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::resolve_threads;

    /// Runs a task grid on the global pool with explicit lanes (bypassing the
    /// machine-parallelism clamp of the `exec` wrappers, so multi-worker code paths are
    /// exercised even on single-core machines) and collects the results in task order.
    fn pooled_map(num_tasks: usize, lanes: usize, f: impl Fn(usize) -> f64 + Sync) -> Vec<f64> {
        let slots: Vec<Mutex<Option<f64>>> = (0..num_tasks).map(|_| Mutex::new(None)).collect();
        WorkerPool::global().run(num_tasks, lanes, |task| {
            *slots[task].lock().unwrap() = Some(f(task));
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("task ran"))
            .collect()
    }

    #[test]
    fn pool_results_are_identical_at_any_lane_count_and_the_pool_grows_once() {
        let data: Vec<f64> = (0..8192).map(|i| (i as f64).sin()).collect();
        let chunk = 64;
        let tasks = data.len() / chunk;
        let sum_chunk = |task: usize| data[task * chunk..(task + 1) * chunk].iter().sum::<f64>();
        let reference = pooled_map(tasks, 1, sum_chunk);
        for lanes in [2, 3, 4, 4, 2] {
            let got = pooled_map(tasks, lanes, sum_chunk);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&reference), bits(&got), "lanes = {lanes}");
        }
        // Reducing in task order after the job completes is bitwise-stable too.
        let total: f64 = reference.iter().sum();
        let total4: f64 = pooled_map(tasks, 4, sum_chunk).iter().sum();
        assert_eq!(total.to_bits(), total4.to_bits());
        // The pool grew to serve the largest request and never shrank.
        assert!(WorkerPool::global().helper_workers() >= 3);
    }

    #[test]
    fn nested_parallel_regions_collapse_to_one_thread_under_the_pool() {
        let observed: Vec<Mutex<usize>> = (0..8).map(|_| Mutex::new(0)).collect();
        WorkerPool::global().run(8, 4, |task| {
            // Every lane of a pool job — workers and the submitting caller alike — is
            // marked as an executor worker, so auto-resolved inner regions run inline.
            *observed[task].lock().unwrap() = resolve_threads(0);
        });
        for slot in &observed {
            assert_eq!(*slot.lock().unwrap(), 1);
        }
    }

    #[test]
    fn task_panics_propagate_and_leave_the_pool_usable() {
        let pool = WorkerPool::global();
        let result = std::panic::catch_unwind(|| {
            pool.run(64, 4, |task| {
                assert!(task != 33, "poisoned task");
            });
        });
        assert!(result.is_err(), "the task panic must reach the caller");
        // The job drained despite the panic; the next job runs normally on the same
        // workers.
        let after = pooled_map(16, 4, |task| task as f64);
        assert_eq!(after, (0..16).map(|t| t as f64).collect::<Vec<_>>());
    }

    #[test]
    fn lane_cap_bounds_participating_threads() {
        use std::collections::HashSet;
        // Grow the pool past the cap first, so extra parked workers exist to be turned
        // away by the admission counter.
        WorkerPool::global().run(16, 4, |_| {});
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        WorkerPool::global().run(64, 2, |_| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        let participants = seen.lock().unwrap().len();
        assert!(
            (1..=2).contains(&participants),
            "a 2-lane job ran on {participants} threads"
        );
    }

    #[test]
    fn single_lane_requests_run_inline() {
        // An inline run must execute every task on the caller's own thread — no job is
        // published and no worker participates. (Thread identity is the race-free way
        // to assert this: concurrent tests may legitimately grow the pool.)
        let caller = std::thread::current().id();
        let slots: Vec<Mutex<Option<f64>>> = (0..4).map(|_| Mutex::new(None)).collect();
        WorkerPool::global().run(4, 1, |task| {
            assert_eq!(std::thread::current().id(), caller);
            *slots[task].lock().unwrap() = Some(task as f64 * 2.0);
        });
        let got: Vec<f64> = slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("task ran"))
            .collect();
        assert_eq!(got, vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn background_jobs_run_to_completion_off_the_caller_thread() {
        use std::sync::atomic::AtomicBool;
        let ran_on = Arc::new(Mutex::new(None));
        let flag = Arc::new(AtomicBool::new(false));
        let (ran_on2, flag2) = (Arc::clone(&ran_on), Arc::clone(&flag));
        let handle = WorkerPool::global().spawn(move || {
            *ran_on2.lock().unwrap() = Some(std::thread::current().id());
            flag2.store(true, Ordering::Release);
        });
        handle.join();
        assert!(flag.load(Ordering::Acquire));
        let worker = ran_on.lock().unwrap().expect("job ran");
        assert_ne!(worker, std::thread::current().id());
    }

    #[test]
    fn background_jobs_overlap_with_foreground_grid_jobs() {
        use std::sync::atomic::AtomicUsize;
        // A slow background job must not serialize foreground grid work behind it:
        // while it sleeps, a grid job submitted afterwards completes.
        let progress = Arc::new(AtomicUsize::new(0));
        let p = Arc::clone(&progress);
        let handle = WorkerPool::global().spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(100));
            p.store(1, Ordering::Release);
        });
        let before = std::time::Instant::now();
        let got = pooled_map(32, 2, |task| task as f64);
        assert_eq!(got.len(), 32);
        assert!(
            before.elapsed() < std::time::Duration::from_millis(90),
            "grid job serialized behind the sleeping background job"
        );
        handle.join();
        assert_eq!(progress.load(Ordering::Acquire), 1);
    }

    #[test]
    fn background_panics_reach_join_and_spare_the_pool() {
        let handle = WorkerPool::global().spawn(|| panic!("background boom"));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.join()));
        assert!(result.is_err(), "the background panic must reach join()");
        // The pool is intact afterwards.
        let after = pooled_map(8, 2, |task| task as f64 + 1.0);
        assert_eq!(after, (0..8).map(|t| t as f64 + 1.0).collect::<Vec<_>>());
    }

    #[test]
    fn try_join_returns_panics_as_values_with_messages() {
        let handle = WorkerPool::global().spawn(|| panic!("supervised boom {}", 7));
        let err = handle
            .try_join()
            .expect_err("the panic must surface as Err");
        assert_eq!(err.message(), "supervised boom 7");
        assert!(err.to_string().contains("supervised boom 7"));
        // A clean job joins Ok.
        let handle = WorkerPool::global().spawn(|| {});
        assert!(handle.try_join().is_ok());
        // The pool survives the supervised crash.
        let after = pooled_map(8, 2, |task| task as f64);
        assert_eq!(after, (0..8).map(|t| t as f64).collect::<Vec<_>>());
    }

    #[test]
    fn background_jobs_can_run_parallel_regions_inside() {
        // The closure is not marked as an executor worker, so an explicit inner grid
        // fans out over the pool; results stay deterministic.
        let result = Arc::new(Mutex::new(Vec::new()));
        let r = Arc::clone(&result);
        let handle = WorkerPool::global().spawn(move || {
            let inner = pooled_map(16, 2, |task| (task * task) as f64);
            *r.lock().unwrap() = inner;
        });
        handle.join();
        let got = result.lock().unwrap().clone();
        assert_eq!(got, (0..16).map(|t| (t * t) as f64).collect::<Vec<_>>());
    }

    #[test]
    fn queued_jobs_drain_in_fifo_order_without_deadlock() {
        // Several background jobs queued at once all complete, even when they outnumber
        // the workers that existed at submit time.
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<JobHandle> = (0..6)
            .map(|_| {
                let c = Arc::clone(&counter);
                WorkerPool::global().spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for handle in handles {
            handle.join();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 6);
    }
}
