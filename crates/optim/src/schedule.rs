//! Step-size schedules for stochastic gradient descent.

/// A learning-rate schedule mapping the (0-based) update counter to a step size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LearningRate {
    /// A constant step size.
    Constant(f64),
    /// `eta0 / (1 + t)^power` — the classical Robbins–Monro decay (use `power = 1.0` for
    /// guaranteed convergence on strongly convex objectives, `0.5` for a gentler decay).
    InvScaling {
        /// Initial step size.
        eta0: f64,
        /// Decay exponent.
        power: f64,
    },
    /// `eta0 / sqrt(1 + t)` — the schedule typically paired with averaged SGD on convex
    /// losses such as SLiMFast's ERM objective.
    InvSqrt(
        /// Initial step size.
        f64,
    ),
}

impl LearningRate {
    /// Step size for update `t` (0-based).
    pub fn rate(&self, t: usize) -> f64 {
        match *self {
            LearningRate::Constant(eta) => eta,
            LearningRate::InvScaling { eta0, power } => eta0 / (1.0 + t as f64).powf(power),
            LearningRate::InvSqrt(eta0) => eta0 / (1.0 + t as f64).sqrt(),
        }
    }
}

impl Default for LearningRate {
    fn default() -> Self {
        LearningRate::InvSqrt(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stays_constant() {
        let lr = LearningRate::Constant(0.1);
        assert_eq!(lr.rate(0), 0.1);
        assert_eq!(lr.rate(1_000_000), 0.1);
    }

    #[test]
    fn schedules_decay_monotonically() {
        for lr in [
            LearningRate::InvScaling {
                eta0: 1.0,
                power: 1.0,
            },
            LearningRate::InvSqrt(1.0),
        ] {
            let mut prev = f64::INFINITY;
            for t in 0..100 {
                let r = lr.rate(t);
                assert!(r > 0.0);
                assert!(r <= prev, "rate must be non-increasing");
                prev = r;
            }
        }
    }

    #[test]
    fn inv_sqrt_matches_formula() {
        let lr = LearningRate::InvSqrt(2.0);
        assert!((lr.rate(3) - 2.0 / 2.0).abs() < 1e-12);
    }
}
