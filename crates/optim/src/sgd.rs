//! A small stochastic-gradient-descent engine over user-supplied objectives.
//!
//! The engine mirrors what the paper gets from DeepDive's DimmWitted sampler: plain SGD
//! with optional AdaGrad scaling, lazy `L2` gradients on touched coordinates, and a
//! proximal (soft-thresholding) step for `L1`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::penalty::Penalty;
use crate::schedule::LearningRate;
use crate::sparse::SparseVec;

/// A differentiable objective expressed as a finite sum of per-example losses.
pub trait StochasticObjective {
    /// Dimension of the parameter vector.
    fn num_params(&self) -> usize;

    /// Number of examples in the finite sum.
    fn num_examples(&self) -> usize;

    /// Computes the loss of example `example` at `w` and accumulates its (sparse) gradient
    /// into `grad`. `grad` is cleared by the caller before each invocation.
    fn example_loss_grad(&self, w: &[f64], example: usize, grad: &mut SparseVec) -> f64;
}

/// Configuration of an SGD run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Maximum number of passes over the data.
    pub epochs: usize,
    /// Step-size schedule (ignored for the data-dependent part when `adagrad` is on).
    pub learning_rate: LearningRate,
    /// Regularization penalty.
    pub penalty: Penalty,
    /// Whether to shuffle the example order every epoch.
    pub shuffle: bool,
    /// Seed controlling the shuffle order (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Relative tolerance on the epoch-average objective used to declare convergence.
    pub tolerance: f64,
    /// Use AdaGrad per-coordinate step sizes instead of the global schedule.
    pub adagrad: bool,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            epochs: 50,
            learning_rate: LearningRate::default(),
            penalty: Penalty::default(),
            shuffle: true,
            seed: 0,
            tolerance: 1e-5,
            adagrad: true,
        }
    }
}

impl SgdConfig {
    /// Convenience constructor fixing the number of epochs.
    pub fn with_epochs(epochs: usize) -> Self {
        Self {
            epochs,
            ..Self::default()
        }
    }

    /// Returns a copy with the given penalty.
    pub fn penalty(mut self, penalty: Penalty) -> Self {
        self.penalty = penalty;
        self
    }

    /// Returns a copy with the given seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The result of an SGD run.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// The final parameter vector.
    pub weights: Vec<f64>,
    /// Epoch-average objective values (data loss plus penalty), one per completed epoch.
    pub loss_history: Vec<f64>,
    /// Whether the tolerance-based stopping criterion fired before `epochs` was exhausted.
    pub converged: bool,
    /// Number of epochs actually executed.
    pub epochs_run: usize,
}

impl FitResult {
    /// The final epoch-average objective value, if any epoch ran.
    pub fn final_loss(&self) -> Option<f64> {
        self.loss_history.last().copied()
    }
}

/// Minimizes a stochastic objective with (proximal) SGD.
///
/// `init` provides warm-start weights; when `None`, optimization starts from zero.
pub fn minimize<O: StochasticObjective>(
    objective: &O,
    init: Option<Vec<f64>>,
    config: &SgdConfig,
) -> FitResult {
    let n_params = objective.num_params();
    let n_examples = objective.num_examples();
    let mut weights = match init {
        Some(mut w) => {
            w.resize(n_params, 0.0);
            w
        }
        None => vec![0.0; n_params],
    };
    if n_examples == 0 || n_params == 0 {
        return FitResult {
            weights,
            loss_history: Vec::new(),
            converged: true,
            epochs_run: 0,
        };
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n_examples).collect();
    let mut adagrad_acc = vec![0.0f64; n_params];
    let mut loss_history: Vec<f64> = Vec::with_capacity(config.epochs);
    let mut converged = false;
    let mut updates = 0usize;
    const ADAGRAD_EPS: f64 = 1e-8;

    for epoch in 0..config.epochs {
        if config.shuffle {
            order.shuffle(&mut rng);
        }
        let mut epoch_loss = 0.0;
        for &example in &order {
            let mut grad = SparseVec::new();
            epoch_loss += objective.example_loss_grad(&weights, example, &mut grad);
            // AdaGrad provides its own per-coordinate decay, so it is paired with the
            // schedule's initial rate; plain SGD follows the schedule.
            let base_rate = if config.adagrad {
                config.learning_rate.rate(0)
            } else {
                config.learning_rate.rate(updates)
            };
            for (i, g_data) in grad.iter() {
                if i >= n_params {
                    continue;
                }
                let g = g_data + config.penalty.smooth_gradient(weights[i]);
                let step = if config.adagrad {
                    adagrad_acc[i] += g * g;
                    base_rate / (adagrad_acc[i].sqrt() + ADAGRAD_EPS)
                } else {
                    base_rate
                };
                let updated = weights[i] - step * g;
                weights[i] = config.penalty.proximal(updated, step);
            }
            updates += 1;
        }
        let avg_loss =
            epoch_loss / n_examples as f64 + config.penalty.value(&weights) / n_examples as f64;
        if let Some(&prev) = loss_history.last() {
            let denom: f64 = prev.abs().max(1.0);
            if ((prev - avg_loss) / denom).abs() < config.tolerance {
                loss_history.push(avg_loss);
                converged = true;
                return FitResult {
                    weights,
                    loss_history,
                    converged,
                    epochs_run: epoch + 1,
                };
            }
        }
        loss_history.push(avg_loss);
    }
    FitResult {
        weights,
        loss_history,
        converged,
        epochs_run: config.epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Least-squares objective `1/2 (w·x - y)^2` over a fixed design — convex, so SGD must
    /// approach the analytic optimum.
    struct LeastSquares {
        xs: Vec<SparseVec>,
        ys: Vec<f64>,
        dim: usize,
    }

    impl StochasticObjective for LeastSquares {
        fn num_params(&self) -> usize {
            self.dim
        }

        fn num_examples(&self) -> usize {
            self.xs.len()
        }

        fn example_loss_grad(&self, w: &[f64], example: usize, grad: &mut SparseVec) -> f64 {
            let x = &self.xs[example];
            let err = x.dot(w) - self.ys[example];
            for (i, v) in x.iter() {
                grad.add(i, err * v);
            }
            0.5 * err * err
        }
    }

    fn toy_regression() -> LeastSquares {
        // y = 2*x0 - 1*x1, noise free.
        let xs: Vec<SparseVec> = (0..50)
            .map(|i| {
                let a = (i % 7) as f64;
                let b = (i % 5) as f64;
                SparseVec::from_pairs([(0, a), (1, b)])
            })
            .collect();
        let ys = xs.iter().map(|x| x.dot(&[2.0, -1.0])).collect();
        LeastSquares { xs, ys, dim: 2 }
    }

    #[test]
    fn sgd_recovers_linear_coefficients() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 300,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, None, &config);
        assert!(
            (fit.weights[0] - 2.0).abs() < 0.05,
            "w0 = {}",
            fit.weights[0]
        );
        assert!(
            (fit.weights[1] + 1.0).abs() < 0.05,
            "w1 = {}",
            fit.weights[1]
        );
    }

    #[test]
    fn loss_history_is_roughly_decreasing() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 50,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, None, &config);
        let first = fit.loss_history.first().copied().unwrap();
        let last = fit.final_loss().unwrap();
        assert!(last < first, "loss should decrease ({first} -> {last})");
    }

    #[test]
    fn convergence_criterion_stops_early() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 10_000,
            tolerance: 1e-9,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, None, &config);
        assert!(fit.converged);
        assert!(fit.epochs_run < 10_000);
    }

    #[test]
    fn l1_penalty_zeroes_irrelevant_coordinates() {
        // y depends only on x0; x1 is pure noise-free redundancy at zero target.
        let xs: Vec<SparseVec> = (0..100)
            .map(|i| SparseVec::from_pairs([(0, (i % 10) as f64), (1, ((i * 7) % 11) as f64)]))
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.dot(&[1.0, 0.0])).collect();
        let obj = LeastSquares { xs, ys, dim: 2 };
        let strong_l1 = SgdConfig {
            epochs: 200,
            penalty: Penalty::L1(50.0),
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, None, &strong_l1);
        // With a strong L1 penalty the redundant coordinate is driven to (essentially) zero,
        // while an unpenalized fit leaves it clearly non-zero.
        let unpenalized = minimize(
            &obj,
            None,
            &SgdConfig {
                epochs: 200,
                tolerance: 0.0,
                ..SgdConfig::default()
            },
        );
        assert!(
            fit.weights[1].abs() < 0.01,
            "penalized w1 = {}",
            fit.weights[1]
        );
        // Shrinkage: the penalized solution has a strictly smaller L1 norm than the
        // unpenalized one.
        let norm = |w: &[f64]| w.iter().map(|x| x.abs()).sum::<f64>();
        assert!(norm(&fit.weights) < norm(&unpenalized.weights));
    }

    #[test]
    fn runs_are_deterministic_given_a_seed() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 20,
            tolerance: 0.0,
            seed: 7,
            ..SgdConfig::default()
        };
        let a = minimize(&obj, None, &config);
        let b = minimize(&obj, None, &config);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.loss_history, b.loss_history);
    }

    #[test]
    fn empty_objective_is_a_noop() {
        struct Empty;
        impl StochasticObjective for Empty {
            fn num_params(&self) -> usize {
                0
            }
            fn num_examples(&self) -> usize {
                0
            }
            fn example_loss_grad(&self, _: &[f64], _: usize, _: &mut SparseVec) -> f64 {
                unreachable!()
            }
        }
        let fit = minimize(&Empty, None, &SgdConfig::default());
        assert!(fit.weights.is_empty());
        assert!(fit.converged);
    }

    #[test]
    fn warm_start_is_respected() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 1,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, Some(vec![2.0, -1.0]), &config);
        // Starting at the optimum, a single epoch keeps us very close to it.
        assert!((fit.weights[0] - 2.0).abs() < 0.2);
        assert!((fit.weights[1] + 1.0).abs() < 0.2);
    }
}
