//! A small stochastic-gradient-descent engine over user-supplied objectives.
//!
//! The engine mirrors what the paper gets from DeepDive's DimmWitted sampler: plain SGD
//! with optional AdaGrad scaling, lazy `L2` gradients on touched coordinates, and a
//! proximal (soft-thresholding) step for `L1`.

use std::cell::RefCell;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::exec;
use crate::penalty::Penalty;
use crate::schedule::LearningRate;
use crate::sparse::SparseVec;

/// A differentiable objective expressed as a finite sum of per-example losses.
///
/// Objectives must be `Sync`: the batched minimizer shards gradient accumulation over
/// disjoint example ranges on several threads (see [`SgdConfig::batch_size`]).
pub trait StochasticObjective: Sync {
    /// Dimension of the parameter vector.
    fn num_params(&self) -> usize;

    /// Number of examples in the finite sum.
    fn num_examples(&self) -> usize;

    /// Computes the loss of example `example` at `w` and accumulates its (sparse) gradient
    /// into `grad`. `grad` is cleared by the caller before each invocation.
    fn example_loss_grad(&self, w: &[f64], example: usize, grad: &mut SparseVec) -> f64;

    /// Hook invoked by the batched minimizer exactly once per mini-batch, on the
    /// coordinator thread, **before** any of the batch's gradient chunks run, with the
    /// weights every chunk of that batch will be evaluated at and the full (shuffled)
    /// example list of the batch.
    ///
    /// Objectives that can hoist per-batch work out of the per-example loop — SLiMFast's
    /// claim-correctness objective precomputes the trust probability and log terms of
    /// every source *appearing in the batch*, turning per-claim dot+sigmoid+log work
    /// into a table gather — refresh their caches in this hook. The default does
    /// nothing. The sequential (per-example) minimizer path never calls it.
    fn begin_batch(&self, _w: &[f64], _examples: &[usize]) {}

    /// Computes the summed loss of the listed `examples` at `w` and appends their sparse
    /// gradient entries to `entries` in example order (duplicate coordinates allowed —
    /// the batch reducer merges them deterministically, in push order).
    ///
    /// This is the unit of work the batched minimizer hands to a worker lane. The
    /// default implementation loops [`example_loss_grad`](Self::example_loss_grad) over
    /// a thread-local scratch vector, which reproduces the historical per-example chunk
    /// behaviour bit for bit. Objectives with a flat structure-of-arrays layout override
    /// it to batch the math through [`crate::kernels`]. Implementations may rely on
    /// state prepared by [`begin_batch`](Self::begin_batch): the batched minimizer
    /// guarantees `begin_batch(w)` ran, with these exact weights, before any chunk of
    /// the batch — direct callers must uphold the same order.
    fn chunk_loss_grad(
        &self,
        w: &[f64],
        examples: &[usize],
        entries: &mut Vec<(usize, f64)>,
    ) -> f64 {
        let mut grad = GRAD_SCRATCH.with(RefCell::take);
        let mut loss = 0.0;
        for &example in examples {
            grad.clear();
            loss += self.example_loss_grad(w, example, &mut grad);
            entries.extend(grad.iter());
        }
        GRAD_SCRATCH.with(|cell| cell.replace(grad));
        loss
    }
}

/// Configuration of an SGD run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Maximum number of passes over the data.
    pub epochs: usize,
    /// Step-size schedule (ignored for the data-dependent part when `adagrad` is on).
    pub learning_rate: LearningRate,
    /// Regularization penalty.
    pub penalty: Penalty,
    /// Whether to shuffle the example order every epoch.
    pub shuffle: bool,
    /// Seed controlling the shuffle order (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Relative tolerance on the epoch-average objective used to declare convergence.
    pub tolerance: f64,
    /// Use AdaGrad per-coordinate step sizes instead of the global schedule.
    pub adagrad: bool,
    /// Examples per parameter update. `0` (the default) **auto-tunes** the batch size
    /// from the objective's example count via [`auto_batch_size`]; a fixed value stays
    /// available as an explicit override. `1` is classic per-example SGD.
    /// Larger batches switch to the deterministic parallel minimizer: each batch's
    /// gradient is accumulated over fixed-size example chunks that can run on several
    /// threads, reduced in chunk order so the result is bitwise-identical at any thread
    /// count. Batching only engages when the objective has at least `4 * batch_size`
    /// examples — below that, per-example updates converge faster and parallelism has
    /// nothing to amortize. One batch parallelizes over at most
    /// `batch_size / 32` workers (the fixed chunk grid), so raise the batch size on
    /// many-core machines. With `adagrad` off, batched updates apply the *mean* batch
    /// gradient so step magnitudes stay comparable to the per-example path.
    pub batch_size: usize,
    /// Worker threads for the batched path. `0` resolves `SLIMFAST_THREADS` /
    /// available parallelism (see [`crate::exec::resolve_threads`]). The thread count
    /// never changes results, only wall-clock time; the lanes actually run are capped
    /// at the machine's parallelism ([`crate::exec::max_lanes`]).
    pub threads: usize,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            epochs: 50,
            learning_rate: LearningRate::default(),
            penalty: Penalty::default(),
            shuffle: true,
            seed: 0,
            tolerance: 1e-5,
            adagrad: true,
            batch_size: 0,
            threads: 0,
        }
    }
}

impl SgdConfig {
    /// Convenience constructor fixing the number of epochs.
    pub fn with_epochs(epochs: usize) -> Self {
        Self {
            epochs,
            ..Self::default()
        }
    }

    /// Returns a copy with the given penalty.
    pub fn penalty(mut self, penalty: Penalty) -> Self {
        self.penalty = penalty;
        self
    }

    /// Returns a copy with the given seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The batch size this configuration uses on an objective with `num_examples`
    /// examples: the explicit [`SgdConfig::batch_size`] when non-zero, otherwise
    /// [`auto_batch_size`]. Depends only on the configuration and the example count —
    /// never on thread counts — so resolved runs stay bitwise-deterministic.
    pub fn resolved_batch_size(&self, num_examples: usize) -> usize {
        match self.batch_size {
            0 => auto_batch_size(num_examples),
            explicit => explicit,
        }
    }
}

/// Examples below which [`auto_batch_size`] keeps classic per-example SGD: small
/// objectives converge faster with per-example updates and have nothing to amortize
/// across threads.
pub const AUTO_BATCH_MIN_EXAMPLES: usize = 1024;

/// The batch size used when [`SgdConfig::batch_size`] is `0` ("auto").
///
/// Tuned from the objective's example count **alone** — never from the thread count or
/// the machine — so a fitted model stays bitwise-identical across `SLIMFAST_THREADS`
/// settings. Objectives under [`AUTO_BATCH_MIN_EXAMPLES`] examples use per-example SGD;
/// larger ones get `num_examples / 256` examples per batch, clamped to `[64, 2048]` and
/// rounded down to a whole number of 32-example gradient chunks (the fixed chunk grid
/// of the batched minimizer). The paper's
/// "millions of claims" regime therefore lands at the 2048 cap — 64 chunks per batch,
/// enough grid for a many-core machine — while a 5k-claim fit gets 64-example batches
/// whose two-chunk grids run inline on the caller.
pub fn auto_batch_size(num_examples: usize) -> usize {
    if num_examples < AUTO_BATCH_MIN_EXAMPLES {
        return 1;
    }
    let raw = (num_examples / 256).clamp(GRAD_CHUNK * 2, 2048);
    (raw / GRAD_CHUNK) * GRAD_CHUNK
}

/// The result of an SGD run.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// The final parameter vector.
    pub weights: Vec<f64>,
    /// Epoch-average objective values (data loss plus penalty), one per completed epoch.
    pub loss_history: Vec<f64>,
    /// Whether the tolerance-based stopping criterion fired before `epochs` was exhausted.
    pub converged: bool,
    /// Number of epochs actually executed.
    pub epochs_run: usize,
}

impl FitResult {
    /// The final epoch-average objective value, if any epoch ran.
    pub fn final_loss(&self) -> Option<f64> {
        self.loss_history.last().copied()
    }
}

/// Minimizes a stochastic objective with (proximal) SGD.
///
/// `init` provides warm-start weights; when `None`, optimization starts from zero.
pub fn minimize<O: StochasticObjective>(
    objective: &O,
    init: Option<Vec<f64>>,
    config: &SgdConfig,
) -> FitResult {
    let n_params = objective.num_params();
    let n_examples = objective.num_examples();
    let mut weights = match init {
        Some(mut w) => {
            w.resize(n_params, 0.0);
            w
        }
        None => vec![0.0; n_params],
    };
    if n_examples == 0 || n_params == 0 {
        return FitResult {
            weights,
            loss_history: Vec::new(),
            converged: true,
            epochs_run: 0,
        };
    }
    let batch_size = config.resolved_batch_size(n_examples);
    if batch_size > 1 && n_examples >= batch_size.saturating_mul(4) {
        return minimize_batched(objective, weights, config, batch_size);
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n_examples).collect();
    let mut adagrad_acc = vec![0.0f64; n_params];
    let mut loss_history: Vec<f64> = Vec::with_capacity(config.epochs);
    let mut converged = false;
    let mut updates = 0usize;
    const ADAGRAD_EPS: f64 = 1e-8;

    let mut grad = SparseVec::new();
    for epoch in 0..config.epochs {
        if config.shuffle {
            order.shuffle(&mut rng);
        }
        let mut epoch_loss = 0.0;
        for &example in &order {
            grad.clear();
            epoch_loss += objective.example_loss_grad(&weights, example, &mut grad);
            // AdaGrad provides its own per-coordinate decay, so it is paired with the
            // schedule's initial rate; plain SGD follows the schedule.
            let base_rate = if config.adagrad {
                config.learning_rate.rate(0)
            } else {
                config.learning_rate.rate(updates)
            };
            for (i, g_data) in grad.iter() {
                if i >= n_params {
                    continue;
                }
                let g = g_data + config.penalty.smooth_gradient(weights[i]);
                let step = if config.adagrad {
                    adagrad_acc[i] += g * g;
                    base_rate / (adagrad_acc[i].sqrt() + ADAGRAD_EPS)
                } else {
                    base_rate
                };
                let updated = weights[i] - step * g;
                weights[i] = config.penalty.proximal(updated, step);
            }
            updates += 1;
        }
        let avg_loss =
            epoch_loss / n_examples as f64 + config.penalty.value(&weights) / n_examples as f64;
        if let Some(&prev) = loss_history.last() {
            let denom: f64 = prev.abs().max(1.0);
            if ((prev - avg_loss) / denom).abs() < config.tolerance {
                loss_history.push(avg_loss);
                converged = true;
                return FitResult {
                    weights,
                    loss_history,
                    converged,
                    epochs_run: epoch + 1,
                };
            }
        }
        loss_history.push(avg_loss);
    }
    FitResult {
        weights,
        loss_history,
        converged,
        epochs_run: config.epochs,
    }
}

/// Examples per gradient-accumulation chunk in the batched minimizer. Fixed (never
/// derived from the thread count) so the chunk grid — and therefore every
/// floating-point reduction order — is identical no matter how many workers run.
/// Kept well below the default batch size so a default-configured batch splits into
/// several chunks and actually spreads across workers; `batch_size / GRAD_CHUNK` is the
/// parallelism ceiling of one batch, so many-core machines should raise
/// [`SgdConfig::batch_size`] accordingly. The chunk size never changes results: partial
/// entries are appended in example order and chunks are reduced in index order, so the
/// flattened accumulation sequence equals global example order for any chunk size.
const GRAD_CHUNK: usize = 32;

/// One chunk's contribution to a batch gradient: the summed loss and the raw
/// `(coordinate, value)` gradient entries in example order.
#[derive(Default)]
struct ChunkPartial {
    loss: f64,
    entries: Vec<(usize, f64)>,
}

/// Locks a chunk partial, shrugging off poison: an objective panic can poison the slot
/// mid-write, but arenas outlive fits on the freelist and every batch fully resets a
/// slot (`loss = 0`, `entries.clear()`) before reading it, so stale state is never
/// observed.
fn lock_partial(slot: &Mutex<ChunkPartial>) -> std::sync::MutexGuard<'_, ChunkPartial> {
    slot.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    /// Per-lane gradient scratch, reused across every chunk, batch, and `minimize` call
    /// that runs on this thread (pool workers live for the whole process, so in steady
    /// state chunk accumulation allocates nothing). Taken out of the cell while in use
    /// so a re-entrant objective degrades to a fresh allocation instead of a panic.
    static GRAD_SCRATCH: RefCell<SparseVec> = RefCell::new(SparseVec::new());
}

/// Process-wide freelist of chunk-partial arenas. One arena is checked out per batched
/// `minimize` call and returned on exit (including unwinds), so consecutive fits — EM
/// runs one `minimize` per M-step — reuse the same chunk buffers instead of
/// reallocating them every iteration.
static FREE_SCRATCH: Mutex<Vec<Vec<Mutex<ChunkPartial>>>> = Mutex::new(Vec::new());

/// A checked-out chunk-partial arena; returns itself to [`FREE_SCRATCH`] on drop.
struct ScratchLease {
    partials: Vec<Mutex<ChunkPartial>>,
}

impl ScratchLease {
    /// Takes an arena off the freelist (or starts a fresh one) and grows it to at least
    /// `max_chunks` slots. Contents are stale from previous use; every batch fully
    /// resets the slots it touches before reading them.
    fn checkout(max_chunks: usize) -> Self {
        let mut partials = FREE_SCRATCH
            .lock()
            .expect("scratch freelist")
            .pop()
            .unwrap_or_default();
        if partials.len() < max_chunks {
            partials.resize_with(max_chunks, || Mutex::new(ChunkPartial::default()));
        }
        Self { partials }
    }
}

impl Drop for ScratchLease {
    fn drop(&mut self) {
        FREE_SCRATCH
            .lock()
            .expect("scratch freelist")
            .push(std::mem::take(&mut self.partials));
    }
}

/// Deterministic mini-batch SGD with parallel gradient accumulation.
///
/// Per epoch the example order is shuffled exactly like the sequential path (same RNG,
/// same seed), then consumed in batches of the resolved batch size. Each batch is cut
/// into fixed [`GRAD_CHUNK`]-sized chunks; lanes accumulate per-chunk loss and sparse
/// gradient entries into per-chunk slots, and the coordinator reduces the chunks **in
/// chunk-index order** into a dense gradient before applying one (AdaGrad-scaled,
/// proximally penalized) update. Because the chunk grid, the per-chunk computation, and
/// the reduction order are all independent of the worker count, results are
/// bitwise-identical at any `threads` setting.
///
/// With AdaGrad the summed batch gradient is applied directly (the accumulator is scale
/// adaptive); without it the **mean** batch gradient is used, so step magnitudes stay
/// comparable to the per-example path instead of growing with the batch size.
///
/// Batches run on the process-wide persistent [`exec::WorkerPool`] — no threads are
/// spawned per call, and parked workers are woken once per batch. Chunk grids smaller
/// than `2 × lanes` (every batch of a small fit) run inline on the caller without
/// touching the pool at all. Gradient scratch is thread-local and the chunk-partial
/// arena is checked out of a process-wide freelist, so steady-state batches allocate
/// nothing. A panic inside the objective on any lane is re-raised on the caller's
/// thread by the pool after the batch drains.
fn minimize_batched<O: StochasticObjective>(
    objective: &O,
    weights: Vec<f64>,
    config: &SgdConfig,
    batch_size: usize,
) -> FitResult {
    let n_params = objective.num_params();
    let n_examples = objective.num_examples();
    let max_chunks = batch_size.div_ceil(GRAD_CHUNK);
    let lanes = exec::execution_lanes(exec::resolve_threads(config.threads), max_chunks);
    const ADAGRAD_EPS: f64 = 1e-8;

    let mut weights = weights;
    let scratch = ScratchLease::checkout(max_chunks);
    let partials = &scratch.partials;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n_examples).collect();
    let mut adagrad_acc = vec![0.0f64; n_params];
    let mut dense_grad = vec![0.0f64; n_params];
    let mut stamp = vec![0u64; n_params];
    let mut touched: Vec<usize> = Vec::new();
    let mut tick = 0u64;
    let mut loss_history: Vec<f64> = Vec::with_capacity(config.epochs);
    let mut converged = false;
    let mut updates = 0usize;
    let mut epochs_run = 0usize;

    'epochs: for epoch in 0..config.epochs {
        epochs_run = epoch + 1;
        if config.shuffle {
            order.shuffle(&mut rng);
        }
        let mut epoch_loss = 0.0;
        let mut start = 0usize;
        while start < n_examples {
            let end = (start + batch_size).min(n_examples);
            let num_chunks = (end - start).div_ceil(GRAD_CHUNK);
            // Per-batch precomputation hook, on the coordinator before the fan-out so
            // every chunk of the batch observes the same prepared state.
            objective.begin_batch(&weights, &order[start..end]);
            {
                // Accumulate the chunks of this batch: chunk `c` covers the fixed
                // example window `start + c*GRAD_CHUNK ..` of the shuffled order and
                // writes only to `partials[c]`, so scheduling cannot change results.
                let weights_ref = &weights;
                let order_ref = &order;
                let run_chunk = |chunk: usize| {
                    let chunk_start = start + chunk * GRAD_CHUNK;
                    let chunk_end = (chunk_start + GRAD_CHUNK).min(end);
                    let mut partial = lock_partial(&partials[chunk]);
                    let partial = &mut *partial;
                    partial.entries.clear();
                    partial.loss = objective.chunk_loss_grad(
                        weights_ref,
                        &order_ref[chunk_start..chunk_end],
                        &mut partial.entries,
                    );
                };
                if lanes <= 1 || num_chunks < 2 * lanes {
                    for chunk in 0..num_chunks {
                        run_chunk(chunk);
                    }
                } else {
                    exec::WorkerPool::global().run(num_chunks, lanes, run_chunk);
                }
            }

            // Reduce the chunk partials in chunk order, then apply one update.
            tick += 1;
            touched.clear();
            for partial in partials.iter().take(num_chunks) {
                let partial = lock_partial(partial);
                epoch_loss += partial.loss;
                for &(i, g) in &partial.entries {
                    if i >= n_params {
                        continue;
                    }
                    if stamp[i] != tick {
                        stamp[i] = tick;
                        dense_grad[i] = 0.0;
                        touched.push(i);
                    }
                    dense_grad[i] += g;
                }
            }
            let base_rate = if config.adagrad {
                config.learning_rate.rate(0)
            } else {
                config.learning_rate.rate(updates)
            };
            // AdaGrad's accumulator is scale adaptive, so the summed batch gradient
            // is applied directly; plain schedules use the batch mean so the step
            // magnitude matches the per-example path.
            let grad_scale = if config.adagrad {
                1.0
            } else {
                1.0 / (end - start) as f64
            };
            for &i in &touched {
                let g = dense_grad[i] * grad_scale + config.penalty.smooth_gradient(weights[i]);
                let step = if config.adagrad {
                    adagrad_acc[i] += g * g;
                    base_rate / (adagrad_acc[i].sqrt() + ADAGRAD_EPS)
                } else {
                    base_rate
                };
                let updated = weights[i] - step * g;
                weights[i] = config.penalty.proximal(updated, step);
            }
            updates += 1;
            start = end;
        }

        let avg_loss =
            epoch_loss / n_examples as f64 + config.penalty.value(&weights) / n_examples as f64;
        if let Some(&prev) = loss_history.last() {
            let denom: f64 = prev.abs().max(1.0);
            if ((prev - avg_loss) / denom).abs() < config.tolerance {
                loss_history.push(avg_loss);
                converged = true;
                break 'epochs;
            }
        }
        loss_history.push(avg_loss);
    }

    FitResult {
        weights,
        loss_history,
        converged,
        epochs_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Least-squares objective `1/2 (w·x - y)^2` over a fixed design — convex, so SGD must
    /// approach the analytic optimum.
    struct LeastSquares {
        xs: Vec<SparseVec>,
        ys: Vec<f64>,
        dim: usize,
    }

    impl StochasticObjective for LeastSquares {
        fn num_params(&self) -> usize {
            self.dim
        }

        fn num_examples(&self) -> usize {
            self.xs.len()
        }

        fn example_loss_grad(&self, w: &[f64], example: usize, grad: &mut SparseVec) -> f64 {
            let x = &self.xs[example];
            let err = x.dot(w) - self.ys[example];
            for (i, v) in x.iter() {
                grad.add(i, err * v);
            }
            0.5 * err * err
        }
    }

    fn toy_regression() -> LeastSquares {
        // y = 2*x0 - 1*x1, noise free.
        let xs: Vec<SparseVec> = (0..50)
            .map(|i| {
                let a = (i % 7) as f64;
                let b = (i % 5) as f64;
                SparseVec::from_pairs([(0, a), (1, b)])
            })
            .collect();
        let ys = xs.iter().map(|x| x.dot(&[2.0, -1.0])).collect();
        LeastSquares { xs, ys, dim: 2 }
    }

    #[test]
    fn sgd_recovers_linear_coefficients() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 300,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, None, &config);
        assert!(
            (fit.weights[0] - 2.0).abs() < 0.05,
            "w0 = {}",
            fit.weights[0]
        );
        assert!(
            (fit.weights[1] + 1.0).abs() < 0.05,
            "w1 = {}",
            fit.weights[1]
        );
    }

    #[test]
    fn loss_history_is_roughly_decreasing() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 50,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, None, &config);
        let first = fit.loss_history.first().copied().unwrap();
        let last = fit.final_loss().unwrap();
        assert!(last < first, "loss should decrease ({first} -> {last})");
    }

    #[test]
    fn convergence_criterion_stops_early() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 10_000,
            tolerance: 1e-9,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, None, &config);
        assert!(fit.converged);
        assert!(fit.epochs_run < 10_000);
    }

    #[test]
    fn l1_penalty_zeroes_irrelevant_coordinates() {
        // y depends only on x0; x1 is pure noise-free redundancy at zero target.
        let xs: Vec<SparseVec> = (0..100)
            .map(|i| SparseVec::from_pairs([(0, (i % 10) as f64), (1, ((i * 7) % 11) as f64)]))
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.dot(&[1.0, 0.0])).collect();
        let obj = LeastSquares { xs, ys, dim: 2 };
        let strong_l1 = SgdConfig {
            epochs: 200,
            penalty: Penalty::L1(50.0),
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, None, &strong_l1);
        // With a strong L1 penalty the redundant coordinate is driven to (essentially) zero,
        // while an unpenalized fit leaves it clearly non-zero.
        let unpenalized = minimize(
            &obj,
            None,
            &SgdConfig {
                epochs: 200,
                tolerance: 0.0,
                ..SgdConfig::default()
            },
        );
        assert!(
            fit.weights[1].abs() < 0.01,
            "penalized w1 = {}",
            fit.weights[1]
        );
        // Shrinkage: the penalized solution has a strictly smaller L1 norm than the
        // unpenalized one.
        let norm = |w: &[f64]| w.iter().map(|x| x.abs()).sum::<f64>();
        assert!(norm(&fit.weights) < norm(&unpenalized.weights));
    }

    #[test]
    fn runs_are_deterministic_given_a_seed() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 20,
            tolerance: 0.0,
            seed: 7,
            ..SgdConfig::default()
        };
        let a = minimize(&obj, None, &config);
        let b = minimize(&obj, None, &config);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.loss_history, b.loss_history);
    }

    #[test]
    fn empty_objective_is_a_noop() {
        struct Empty;
        impl StochasticObjective for Empty {
            fn num_params(&self) -> usize {
                0
            }
            fn num_examples(&self) -> usize {
                0
            }
            fn example_loss_grad(&self, _: &[f64], _: usize, _: &mut SparseVec) -> f64 {
                unreachable!()
            }
        }
        let fit = minimize(&Empty, None, &SgdConfig::default());
        assert!(fit.weights.is_empty());
        assert!(fit.converged);
    }

    fn big_regression(n: usize) -> LeastSquares {
        // y = 2*x0 - 1*x1 + 0.5*x2, noise free, n examples (enough to engage batching).
        let xs: Vec<SparseVec> = (0..n)
            .map(|i| {
                SparseVec::from_pairs([
                    (0, (i % 7) as f64),
                    (1, (i % 5) as f64),
                    (2, ((i * 3) % 11) as f64),
                ])
            })
            .collect();
        let ys = xs.iter().map(|x| x.dot(&[2.0, -1.0, 0.5])).collect();
        LeastSquares { xs, ys, dim: 3 }
    }

    #[test]
    fn batched_sgd_recovers_linear_coefficients() {
        let obj = big_regression(4096);
        let config = SgdConfig {
            epochs: 60,
            tolerance: 0.0,
            batch_size: 64,
            threads: 1,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, None, &config);
        assert!(
            (fit.weights[0] - 2.0).abs() < 0.05
                && (fit.weights[1] + 1.0).abs() < 0.05
                && (fit.weights[2] - 0.5).abs() < 0.05,
            "weights = {:?}",
            fit.weights
        );
        let first = fit.loss_history.first().copied().unwrap();
        let last = fit.final_loss().unwrap();
        assert!(
            last < first,
            "batched loss should decrease ({first} -> {last})"
        );
    }

    #[test]
    fn batched_sgd_is_bitwise_identical_at_any_thread_count() {
        let obj = big_regression(5000);
        let fit_with = |threads: usize| {
            let config = SgdConfig {
                epochs: 8,
                tolerance: 0.0,
                seed: 9,
                batch_size: 512,
                threads,
                ..SgdConfig::default()
            };
            minimize(&obj, None, &config)
        };
        let reference = fit_with(1);
        for threads in [2, 3, 4] {
            let fit = fit_with(threads);
            let bits = |w: &[f64]| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&reference.weights),
                bits(&fit.weights),
                "threads = {threads}"
            );
            assert_eq!(
                bits(&reference.loss_history),
                bits(&fit.loss_history),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn batched_sgd_propagates_objective_panics_instead_of_deadlocking() {
        struct Panicky;
        impl StochasticObjective for Panicky {
            fn num_params(&self) -> usize {
                2
            }
            fn num_examples(&self) -> usize {
                4096
            }
            fn example_loss_grad(&self, _: &[f64], example: usize, grad: &mut SparseVec) -> f64 {
                assert!(example != 1234, "poisoned example");
                grad.add(0, 0.1);
                0.0
            }
        }
        let config = SgdConfig {
            epochs: 1,
            batch_size: 256,
            threads: 3,
            shuffle: false,
            ..SgdConfig::default()
        };
        let result = std::panic::catch_unwind(|| minimize(&Panicky, None, &config));
        assert!(result.is_err(), "the objective panic must reach the caller");
    }

    #[test]
    fn small_objectives_fall_back_to_per_example_sgd() {
        // 50 examples < 4 * batch_size: the classic path runs, so results match the
        // batch_size = 1 configuration exactly.
        let obj = toy_regression();
        let sequential = minimize(
            &obj,
            None,
            &SgdConfig {
                epochs: 20,
                tolerance: 0.0,
                batch_size: 1,
                ..SgdConfig::default()
            },
        );
        let batched_requested = minimize(
            &obj,
            None,
            &SgdConfig {
                epochs: 20,
                tolerance: 0.0,
                batch_size: 64,
                threads: 4,
                ..SgdConfig::default()
            },
        );
        assert_eq!(sequential.weights, batched_requested.weights);
    }

    #[test]
    fn auto_batch_size_depends_only_on_the_example_count() {
        // Small objectives stay per-example; larger ones scale with n under a cap.
        assert_eq!(auto_batch_size(0), 1);
        assert_eq!(auto_batch_size(AUTO_BATCH_MIN_EXAMPLES - 1), 1);
        assert_eq!(auto_batch_size(AUTO_BATCH_MIN_EXAMPLES), 64);
        assert_eq!(auto_batch_size(200_000), 768);
        assert_eq!(auto_batch_size(10_000_000), 2048);
        // Always a whole number of gradient chunks, and always engageable (n >= 4b).
        for n in [1024usize, 5_000, 50_164, 200_119, 1 << 22] {
            let b = auto_batch_size(n);
            assert_eq!(b % GRAD_CHUNK, 0, "n = {n}");
            assert!(n >= 4 * b, "n = {n}, b = {b}");
        }
    }

    #[test]
    fn auto_batch_matches_the_equivalent_explicit_batch_bitwise() {
        let obj = big_regression(4096);
        let auto = SgdConfig {
            epochs: 6,
            tolerance: 0.0,
            seed: 3,
            batch_size: 0,
            ..SgdConfig::default()
        };
        let explicit = SgdConfig {
            batch_size: auto_batch_size(obj.num_examples()),
            ..auto
        };
        assert!(explicit.batch_size > 1, "auto must engage batching here");
        let a = minimize(&obj, None, &auto);
        let b = minimize(&obj, None, &explicit);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.loss_history, b.loss_history);
    }

    #[test]
    fn scratch_reuse_across_consecutive_batched_fits_is_bitwise_deterministic() {
        // The first call checks a fresh chunk arena out of the freelist; the second
        // reuses it. Any state leaking across fits would break this equality.
        let obj = big_regression(6000);
        let config = SgdConfig {
            epochs: 5,
            tolerance: 0.0,
            seed: 21,
            batch_size: 256,
            threads: 2,
            ..SgdConfig::default()
        };
        let a = minimize(&obj, None, &config);
        let b = minimize(&obj, None, &config);
        let bits = |w: &[f64]| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.weights), bits(&b.weights));
        assert_eq!(bits(&a.loss_history), bits(&b.loss_history));
    }

    #[test]
    fn warm_start_is_respected() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 1,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, Some(vec![2.0, -1.0]), &config);
        // Starting at the optimum, a single epoch keeps us very close to it.
        assert!((fit.weights[0] - 2.0).abs() < 0.2);
        assert!((fit.weights[1] + 1.0).abs() < 0.2);
    }
}
