//! A small stochastic-gradient-descent engine over user-supplied objectives.
//!
//! The engine mirrors what the paper gets from DeepDive's DimmWitted sampler: plain SGD
//! with optional AdaGrad scaling, lazy `L2` gradients on touched coordinates, and a
//! proximal (soft-thresholding) step for `L1`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::exec;
use crate::penalty::Penalty;
use crate::schedule::LearningRate;
use crate::sparse::SparseVec;

/// A differentiable objective expressed as a finite sum of per-example losses.
///
/// Objectives must be `Sync`: the batched minimizer shards gradient accumulation over
/// disjoint example ranges on several threads (see [`SgdConfig::batch_size`]).
pub trait StochasticObjective: Sync {
    /// Dimension of the parameter vector.
    fn num_params(&self) -> usize;

    /// Number of examples in the finite sum.
    fn num_examples(&self) -> usize;

    /// Computes the loss of example `example` at `w` and accumulates its (sparse) gradient
    /// into `grad`. `grad` is cleared by the caller before each invocation.
    fn example_loss_grad(&self, w: &[f64], example: usize, grad: &mut SparseVec) -> f64;
}

/// Configuration of an SGD run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Maximum number of passes over the data.
    pub epochs: usize,
    /// Step-size schedule (ignored for the data-dependent part when `adagrad` is on).
    pub learning_rate: LearningRate,
    /// Regularization penalty.
    pub penalty: Penalty,
    /// Whether to shuffle the example order every epoch.
    pub shuffle: bool,
    /// Seed controlling the shuffle order (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Relative tolerance on the epoch-average objective used to declare convergence.
    pub tolerance: f64,
    /// Use AdaGrad per-coordinate step sizes instead of the global schedule.
    pub adagrad: bool,
    /// Examples per parameter update. `1` (the default) is classic per-example SGD.
    /// Larger batches switch to the deterministic parallel minimizer: each batch's
    /// gradient is accumulated over fixed-size example chunks that can run on several
    /// threads, reduced in chunk order so the result is bitwise-identical at any thread
    /// count. Batching only engages when the objective has at least `4 * batch_size`
    /// examples — below that, per-example updates converge faster and parallelism has
    /// nothing to amortize. One batch parallelizes over at most
    /// `batch_size / 32` workers (the fixed chunk grid), so raise the batch size on
    /// many-core machines. With `adagrad` off, batched updates apply the *mean* batch
    /// gradient so step magnitudes stay comparable to the per-example path.
    pub batch_size: usize,
    /// Worker threads for the batched path. `0` resolves `SLIMFAST_THREADS` /
    /// available parallelism (see [`crate::exec::resolve_threads`]). The thread count
    /// never changes results, only wall-clock time.
    pub threads: usize,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            epochs: 50,
            learning_rate: LearningRate::default(),
            penalty: Penalty::default(),
            shuffle: true,
            seed: 0,
            tolerance: 1e-5,
            adagrad: true,
            batch_size: 1,
            threads: 0,
        }
    }
}

impl SgdConfig {
    /// Convenience constructor fixing the number of epochs.
    pub fn with_epochs(epochs: usize) -> Self {
        Self {
            epochs,
            ..Self::default()
        }
    }

    /// Returns a copy with the given penalty.
    pub fn penalty(mut self, penalty: Penalty) -> Self {
        self.penalty = penalty;
        self
    }

    /// Returns a copy with the given seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The result of an SGD run.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// The final parameter vector.
    pub weights: Vec<f64>,
    /// Epoch-average objective values (data loss plus penalty), one per completed epoch.
    pub loss_history: Vec<f64>,
    /// Whether the tolerance-based stopping criterion fired before `epochs` was exhausted.
    pub converged: bool,
    /// Number of epochs actually executed.
    pub epochs_run: usize,
}

impl FitResult {
    /// The final epoch-average objective value, if any epoch ran.
    pub fn final_loss(&self) -> Option<f64> {
        self.loss_history.last().copied()
    }
}

/// Minimizes a stochastic objective with (proximal) SGD.
///
/// `init` provides warm-start weights; when `None`, optimization starts from zero.
pub fn minimize<O: StochasticObjective>(
    objective: &O,
    init: Option<Vec<f64>>,
    config: &SgdConfig,
) -> FitResult {
    let n_params = objective.num_params();
    let n_examples = objective.num_examples();
    let mut weights = match init {
        Some(mut w) => {
            w.resize(n_params, 0.0);
            w
        }
        None => vec![0.0; n_params],
    };
    if n_examples == 0 || n_params == 0 {
        return FitResult {
            weights,
            loss_history: Vec::new(),
            converged: true,
            epochs_run: 0,
        };
    }
    if config.batch_size > 1 && n_examples >= config.batch_size.saturating_mul(4) {
        return minimize_batched(objective, weights, config);
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n_examples).collect();
    let mut adagrad_acc = vec![0.0f64; n_params];
    let mut loss_history: Vec<f64> = Vec::with_capacity(config.epochs);
    let mut converged = false;
    let mut updates = 0usize;
    const ADAGRAD_EPS: f64 = 1e-8;

    let mut grad = SparseVec::new();
    for epoch in 0..config.epochs {
        if config.shuffle {
            order.shuffle(&mut rng);
        }
        let mut epoch_loss = 0.0;
        for &example in &order {
            grad.clear();
            epoch_loss += objective.example_loss_grad(&weights, example, &mut grad);
            // AdaGrad provides its own per-coordinate decay, so it is paired with the
            // schedule's initial rate; plain SGD follows the schedule.
            let base_rate = if config.adagrad {
                config.learning_rate.rate(0)
            } else {
                config.learning_rate.rate(updates)
            };
            for (i, g_data) in grad.iter() {
                if i >= n_params {
                    continue;
                }
                let g = g_data + config.penalty.smooth_gradient(weights[i]);
                let step = if config.adagrad {
                    adagrad_acc[i] += g * g;
                    base_rate / (adagrad_acc[i].sqrt() + ADAGRAD_EPS)
                } else {
                    base_rate
                };
                let updated = weights[i] - step * g;
                weights[i] = config.penalty.proximal(updated, step);
            }
            updates += 1;
        }
        let avg_loss =
            epoch_loss / n_examples as f64 + config.penalty.value(&weights) / n_examples as f64;
        if let Some(&prev) = loss_history.last() {
            let denom: f64 = prev.abs().max(1.0);
            if ((prev - avg_loss) / denom).abs() < config.tolerance {
                loss_history.push(avg_loss);
                converged = true;
                return FitResult {
                    weights,
                    loss_history,
                    converged,
                    epochs_run: epoch + 1,
                };
            }
        }
        loss_history.push(avg_loss);
    }
    FitResult {
        weights,
        loss_history,
        converged,
        epochs_run: config.epochs,
    }
}

/// Examples per gradient-accumulation chunk in the batched minimizer. Fixed (never
/// derived from the thread count) so the chunk grid — and therefore every
/// floating-point reduction order — is identical no matter how many workers run.
/// Kept well below the default batch size so a default-configured batch splits into
/// several chunks and actually spreads across workers; `batch_size / GRAD_CHUNK` is the
/// parallelism ceiling of one batch, so many-core machines should raise
/// [`SgdConfig::batch_size`] accordingly. The chunk size never changes results: partial
/// entries are appended in example order and chunks are reduced in index order, so the
/// flattened accumulation sequence equals global example order for any chunk size.
const GRAD_CHUNK: usize = 32;

/// One chunk's contribution to a batch gradient: the summed loss and the raw
/// `(coordinate, value)` gradient entries in example order.
#[derive(Default)]
struct ChunkPartial {
    loss: f64,
    entries: Vec<(usize, f64)>,
}

/// Shared state of one batched run: workers read the weights and the current batch
/// window, the coordinating thread owns all mutation between barrier phases.
struct BatchState {
    weights: RwLock<Vec<f64>>,
    order: RwLock<Vec<usize>>,
    /// Current batch as a `start..end` window into `order`.
    window: RwLock<(usize, usize)>,
    done: AtomicBool,
    /// Set when any lane's objective panicked; the first payload is kept so the
    /// coordinator can shut the pool down cleanly and re-raise it (a raw panic inside
    /// a worker would leave the others blocked at the barrier forever).
    failed: AtomicBool,
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Deterministic mini-batch SGD with parallel gradient accumulation.
///
/// Per epoch the example order is shuffled exactly like the sequential path (same RNG,
/// same seed), then consumed in batches of [`SgdConfig::batch_size`]. Each batch is cut
/// into fixed [`GRAD_CHUNK`]-sized chunks; workers accumulate per-chunk loss and sparse
/// gradient entries, and the coordinator reduces the chunks **in chunk-index order**
/// into a dense gradient before applying one (AdaGrad-scaled, proximally penalized)
/// update. Because the chunk grid and the reduction order are independent of the worker
/// count, results are bitwise-identical at any `threads` setting.
///
/// With AdaGrad the summed batch gradient is applied directly (the accumulator is scale
/// adaptive); without it the **mean** batch gradient is used, so step magnitudes stay
/// comparable to the per-example path instead of growing with the batch size.
///
/// Workers are spawned once per call and synchronized with a [`Barrier`] (two waits per
/// batch), so per-batch overhead stays in the microseconds regardless of epoch count.
/// A panic inside the objective on any lane is caught, the pool is shut down, and the
/// panic is re-raised on the caller's thread (instead of deadlocking the barrier).
fn minimize_batched<O: StochasticObjective>(
    objective: &O,
    weights: Vec<f64>,
    config: &SgdConfig,
) -> FitResult {
    let n_params = objective.num_params();
    let n_examples = objective.num_examples();
    let batch_size = config.batch_size;
    let max_chunks = batch_size.div_ceil(GRAD_CHUNK);
    let threads = exec::resolve_threads(config.threads).min(max_chunks).max(1);
    const ADAGRAD_EPS: f64 = 1e-8;

    let state = BatchState {
        weights: RwLock::new(weights),
        order: RwLock::new((0..n_examples).collect()),
        window: RwLock::new((0, 0)),
        done: AtomicBool::new(false),
        failed: AtomicBool::new(false),
        panic_payload: Mutex::new(None),
    };
    let partials: Vec<Mutex<ChunkPartial>> = (0..max_chunks)
        .map(|_| Mutex::new(ChunkPartial::default()))
        .collect();
    let barrier = Barrier::new(threads);

    // Accumulates this worker's chunks of the current batch (worker `t` takes chunks
    // `t, t + threads, ...`). Runs between the two barrier phases of a batch. Panics
    // from the objective are captured into the shared state so every lane still
    // reaches its barrier and the pool can shut down instead of deadlocking.
    let compute_chunks = |worker: usize| {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let weights = state.weights.read().expect("weights lock");
            let order = state.order.read().expect("order lock");
            let (start, end) = *state.window.read().expect("window lock");
            let num_chunks = (end - start).div_ceil(GRAD_CHUNK);
            let mut grad = SparseVec::new();
            let mut chunk = worker;
            while chunk < num_chunks {
                let chunk_start = start + chunk * GRAD_CHUNK;
                let chunk_end = (chunk_start + GRAD_CHUNK).min(end);
                let mut partial = partials[chunk].lock().expect("partial lock");
                partial.loss = 0.0;
                partial.entries.clear();
                for &example in &order[chunk_start..chunk_end] {
                    grad.clear();
                    partial.loss += objective.example_loss_grad(&weights, example, &mut grad);
                    partial.entries.extend(grad.iter());
                }
                chunk += threads;
            }
        }));
        if let Err(payload) = result {
            let mut slot = state.panic_payload.lock().expect("panic slot");
            slot.get_or_insert(payload);
            state.failed.store(true, Ordering::SeqCst);
        }
    };

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut adagrad_acc = vec![0.0f64; n_params];
    let mut dense_grad = vec![0.0f64; n_params];
    let mut stamp = vec![0u64; n_params];
    let mut touched: Vec<usize> = Vec::new();
    let mut tick = 0u64;
    let mut loss_history: Vec<f64> = Vec::with_capacity(config.epochs);
    let mut converged = false;
    let mut updates = 0usize;
    let mut epochs_run = 0usize;

    std::thread::scope(|scope| {
        for worker in 1..threads {
            let state = &state;
            let barrier = &barrier;
            let compute_chunks = &compute_chunks;
            scope.spawn(move || {
                exec::as_worker(|| loop {
                    barrier.wait();
                    if state.done.load(Ordering::SeqCst) {
                        break;
                    }
                    compute_chunks(worker);
                    barrier.wait();
                })
            });
        }

        'epochs: for epoch in 0..config.epochs {
            epochs_run = epoch + 1;
            if config.shuffle {
                state.order.write().expect("order lock").shuffle(&mut rng);
            }
            let mut epoch_loss = 0.0;
            let mut start = 0usize;
            while start < n_examples {
                let end = (start + batch_size).min(n_examples);
                *state.window.write().expect("window lock") = (start, end);
                barrier.wait();
                compute_chunks(0);
                barrier.wait();

                // An objective panic on any lane: release the workers, then re-raise
                // on this thread (scope joins the exited workers on unwind).
                if state.failed.load(Ordering::SeqCst) {
                    state.done.store(true, Ordering::SeqCst);
                    barrier.wait();
                    let payload = state.panic_payload.lock().expect("panic slot").take();
                    std::panic::resume_unwind(
                        payload.unwrap_or_else(|| Box::new("batched SGD worker panicked")),
                    );
                }

                // Reduce the chunk partials in chunk order, then apply one update.
                let mut weights = state.weights.write().expect("weights lock");
                let num_chunks = (end - start).div_ceil(GRAD_CHUNK);
                tick += 1;
                touched.clear();
                for partial in partials.iter().take(num_chunks) {
                    let partial = partial.lock().expect("partial lock");
                    epoch_loss += partial.loss;
                    for &(i, g) in &partial.entries {
                        if i >= n_params {
                            continue;
                        }
                        if stamp[i] != tick {
                            stamp[i] = tick;
                            dense_grad[i] = 0.0;
                            touched.push(i);
                        }
                        dense_grad[i] += g;
                    }
                }
                let base_rate = if config.adagrad {
                    config.learning_rate.rate(0)
                } else {
                    config.learning_rate.rate(updates)
                };
                // AdaGrad's accumulator is scale adaptive, so the summed batch gradient
                // is applied directly; plain schedules use the batch mean so the step
                // magnitude matches the per-example path.
                let grad_scale = if config.adagrad {
                    1.0
                } else {
                    1.0 / (end - start) as f64
                };
                for &i in &touched {
                    let g = dense_grad[i] * grad_scale + config.penalty.smooth_gradient(weights[i]);
                    let step = if config.adagrad {
                        adagrad_acc[i] += g * g;
                        base_rate / (adagrad_acc[i].sqrt() + ADAGRAD_EPS)
                    } else {
                        base_rate
                    };
                    let updated = weights[i] - step * g;
                    weights[i] = config.penalty.proximal(updated, step);
                }
                updates += 1;
                start = end;
            }

            let penalty_value = {
                let weights = state.weights.read().expect("weights lock");
                config.penalty.value(&weights)
            };
            let avg_loss = epoch_loss / n_examples as f64 + penalty_value / n_examples as f64;
            if let Some(&prev) = loss_history.last() {
                let denom: f64 = prev.abs().max(1.0);
                if ((prev - avg_loss) / denom).abs() < config.tolerance {
                    loss_history.push(avg_loss);
                    converged = true;
                    break 'epochs;
                }
            }
            loss_history.push(avg_loss);
        }

        state.done.store(true, Ordering::SeqCst);
        barrier.wait();
    });

    FitResult {
        weights: state.weights.into_inner().expect("weights lock"),
        loss_history,
        converged,
        epochs_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Least-squares objective `1/2 (w·x - y)^2` over a fixed design — convex, so SGD must
    /// approach the analytic optimum.
    struct LeastSquares {
        xs: Vec<SparseVec>,
        ys: Vec<f64>,
        dim: usize,
    }

    impl StochasticObjective for LeastSquares {
        fn num_params(&self) -> usize {
            self.dim
        }

        fn num_examples(&self) -> usize {
            self.xs.len()
        }

        fn example_loss_grad(&self, w: &[f64], example: usize, grad: &mut SparseVec) -> f64 {
            let x = &self.xs[example];
            let err = x.dot(w) - self.ys[example];
            for (i, v) in x.iter() {
                grad.add(i, err * v);
            }
            0.5 * err * err
        }
    }

    fn toy_regression() -> LeastSquares {
        // y = 2*x0 - 1*x1, noise free.
        let xs: Vec<SparseVec> = (0..50)
            .map(|i| {
                let a = (i % 7) as f64;
                let b = (i % 5) as f64;
                SparseVec::from_pairs([(0, a), (1, b)])
            })
            .collect();
        let ys = xs.iter().map(|x| x.dot(&[2.0, -1.0])).collect();
        LeastSquares { xs, ys, dim: 2 }
    }

    #[test]
    fn sgd_recovers_linear_coefficients() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 300,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, None, &config);
        assert!(
            (fit.weights[0] - 2.0).abs() < 0.05,
            "w0 = {}",
            fit.weights[0]
        );
        assert!(
            (fit.weights[1] + 1.0).abs() < 0.05,
            "w1 = {}",
            fit.weights[1]
        );
    }

    #[test]
    fn loss_history_is_roughly_decreasing() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 50,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, None, &config);
        let first = fit.loss_history.first().copied().unwrap();
        let last = fit.final_loss().unwrap();
        assert!(last < first, "loss should decrease ({first} -> {last})");
    }

    #[test]
    fn convergence_criterion_stops_early() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 10_000,
            tolerance: 1e-9,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, None, &config);
        assert!(fit.converged);
        assert!(fit.epochs_run < 10_000);
    }

    #[test]
    fn l1_penalty_zeroes_irrelevant_coordinates() {
        // y depends only on x0; x1 is pure noise-free redundancy at zero target.
        let xs: Vec<SparseVec> = (0..100)
            .map(|i| SparseVec::from_pairs([(0, (i % 10) as f64), (1, ((i * 7) % 11) as f64)]))
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.dot(&[1.0, 0.0])).collect();
        let obj = LeastSquares { xs, ys, dim: 2 };
        let strong_l1 = SgdConfig {
            epochs: 200,
            penalty: Penalty::L1(50.0),
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, None, &strong_l1);
        // With a strong L1 penalty the redundant coordinate is driven to (essentially) zero,
        // while an unpenalized fit leaves it clearly non-zero.
        let unpenalized = minimize(
            &obj,
            None,
            &SgdConfig {
                epochs: 200,
                tolerance: 0.0,
                ..SgdConfig::default()
            },
        );
        assert!(
            fit.weights[1].abs() < 0.01,
            "penalized w1 = {}",
            fit.weights[1]
        );
        // Shrinkage: the penalized solution has a strictly smaller L1 norm than the
        // unpenalized one.
        let norm = |w: &[f64]| w.iter().map(|x| x.abs()).sum::<f64>();
        assert!(norm(&fit.weights) < norm(&unpenalized.weights));
    }

    #[test]
    fn runs_are_deterministic_given_a_seed() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 20,
            tolerance: 0.0,
            seed: 7,
            ..SgdConfig::default()
        };
        let a = minimize(&obj, None, &config);
        let b = minimize(&obj, None, &config);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.loss_history, b.loss_history);
    }

    #[test]
    fn empty_objective_is_a_noop() {
        struct Empty;
        impl StochasticObjective for Empty {
            fn num_params(&self) -> usize {
                0
            }
            fn num_examples(&self) -> usize {
                0
            }
            fn example_loss_grad(&self, _: &[f64], _: usize, _: &mut SparseVec) -> f64 {
                unreachable!()
            }
        }
        let fit = minimize(&Empty, None, &SgdConfig::default());
        assert!(fit.weights.is_empty());
        assert!(fit.converged);
    }

    fn big_regression(n: usize) -> LeastSquares {
        // y = 2*x0 - 1*x1 + 0.5*x2, noise free, n examples (enough to engage batching).
        let xs: Vec<SparseVec> = (0..n)
            .map(|i| {
                SparseVec::from_pairs([
                    (0, (i % 7) as f64),
                    (1, (i % 5) as f64),
                    (2, ((i * 3) % 11) as f64),
                ])
            })
            .collect();
        let ys = xs.iter().map(|x| x.dot(&[2.0, -1.0, 0.5])).collect();
        LeastSquares { xs, ys, dim: 3 }
    }

    #[test]
    fn batched_sgd_recovers_linear_coefficients() {
        let obj = big_regression(4096);
        let config = SgdConfig {
            epochs: 60,
            tolerance: 0.0,
            batch_size: 64,
            threads: 1,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, None, &config);
        assert!(
            (fit.weights[0] - 2.0).abs() < 0.05
                && (fit.weights[1] + 1.0).abs() < 0.05
                && (fit.weights[2] - 0.5).abs() < 0.05,
            "weights = {:?}",
            fit.weights
        );
        let first = fit.loss_history.first().copied().unwrap();
        let last = fit.final_loss().unwrap();
        assert!(
            last < first,
            "batched loss should decrease ({first} -> {last})"
        );
    }

    #[test]
    fn batched_sgd_is_bitwise_identical_at_any_thread_count() {
        let obj = big_regression(5000);
        let fit_with = |threads: usize| {
            let config = SgdConfig {
                epochs: 8,
                tolerance: 0.0,
                seed: 9,
                batch_size: 512,
                threads,
                ..SgdConfig::default()
            };
            minimize(&obj, None, &config)
        };
        let reference = fit_with(1);
        for threads in [2, 3, 4] {
            let fit = fit_with(threads);
            let bits = |w: &[f64]| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&reference.weights),
                bits(&fit.weights),
                "threads = {threads}"
            );
            assert_eq!(
                bits(&reference.loss_history),
                bits(&fit.loss_history),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn batched_sgd_propagates_objective_panics_instead_of_deadlocking() {
        struct Panicky;
        impl StochasticObjective for Panicky {
            fn num_params(&self) -> usize {
                2
            }
            fn num_examples(&self) -> usize {
                4096
            }
            fn example_loss_grad(&self, _: &[f64], example: usize, grad: &mut SparseVec) -> f64 {
                assert!(example != 1234, "poisoned example");
                grad.add(0, 0.1);
                0.0
            }
        }
        let config = SgdConfig {
            epochs: 1,
            batch_size: 256,
            threads: 3,
            shuffle: false,
            ..SgdConfig::default()
        };
        let result = std::panic::catch_unwind(|| minimize(&Panicky, None, &config));
        assert!(result.is_err(), "the objective panic must reach the caller");
    }

    #[test]
    fn small_objectives_fall_back_to_per_example_sgd() {
        // 50 examples < 4 * batch_size: the classic path runs, so results match the
        // batch_size = 1 configuration exactly.
        let obj = toy_regression();
        let sequential = minimize(
            &obj,
            None,
            &SgdConfig {
                epochs: 20,
                tolerance: 0.0,
                ..SgdConfig::default()
            },
        );
        let batched_requested = minimize(
            &obj,
            None,
            &SgdConfig {
                epochs: 20,
                tolerance: 0.0,
                batch_size: 64,
                threads: 4,
                ..SgdConfig::default()
            },
        );
        assert_eq!(sequential.weights, batched_requested.weights);
    }

    #[test]
    fn warm_start_is_respected() {
        let obj = toy_regression();
        let config = SgdConfig {
            epochs: 1,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let fit = minimize(&obj, Some(vec![2.0, -1.0]), &config);
        // Starting at the optimum, a single epoch keeps us very close to it.
        assert!((fit.weights[0] - 2.0).abs() < 0.2);
        assert!((fit.weights[1] + 1.0).abs() < 0.2);
    }
}
