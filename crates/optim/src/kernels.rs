//! Batched, bitwise-deterministic math kernels over flat slices.
//!
//! Every hot inner loop in the workspace — the EM E-step posterior pass, the
//! M-step gradient chunks, and batched posterior serving — bottoms out in one
//! of four operations: sigmoid over a slice of scores, softmax over
//! CSR-segmented rows, a sparse-dense dot product, and a scaled sparse scatter
//! into a dense accumulator. This module provides those operations over flat
//! structure-of-arrays inputs (contiguous `u32` index columns next to `f64`
//! value columns) so the loop bodies are branch-light, straight-line code the
//! autovectorizer can work with, instead of per-claim `SparseVec` walks that
//! call scalar `libm` routines one value at a time.
//!
//! # Determinism contract
//!
//! Results are a pure function of the input slices — **never** of
//! `SLIMFAST_THREADS`, the machine's core count, or how a caller partitions
//! work into chunks:
//!
//! * Elementwise kernels ([`sigmoid_slice`], [`ln_slice`], [`exp`]) are
//!   branch-free polynomial evaluations applied independently per element, so
//!   slicing a buffer into sub-slices and applying the kernel to each part
//!   yields bitwise-identical results to one pass over the whole buffer.
//! * [`softmax_rows`] applies [`softmax_row`] to each CSR segment
//!   independently; batching rows never changes a row's result versus scoring
//!   it alone. Within a row the max, exponential, and normalisation passes run
//!   in ascending index order.
//! * [`dot_csr`] uses a **fixed summation order**: four accumulator lanes,
//!   where lane `l` sums the terms at positions `j ≡ l (mod 4)` of the full
//!   4-wide chunks in ascending order, remainder terms are folded into lanes
//!   `0..n%4` in order, and the final combine is always
//!   `(acc0 + acc1) + (acc2 + acc3)`. The order depends only on the row
//!   length, never on how many threads are running or which chunk the row
//!   belongs to.
//! * [`axpy_scatter`] applies its updates strictly in ascending position
//!   order into the caller's accumulator.
//!
//! Floating-point addition is not associative, so these fixed orders are what
//! make the whole training pipeline bitwise-reproducible across
//! `SLIMFAST_THREADS` values: the executor hands out identical chunk grids
//! regardless of lane count, and every reduction inside a chunk follows the
//! orders above. The kernels contain no fused-multiply-add and no
//! target-feature dispatch, so results are also stable across
//! `-C target-cpu` settings (LLVM may not reassociate or contract float
//! arithmetic without explicit fast-math, which this workspace never enables).
//!
//! # Accuracy
//!
//! [`exp`] and [`ln`] are range-reduced polynomial approximations accurate to
//! a few ulp (relative error well under `1e-13` against `f64::exp`/`f64::ln`
//! over their documented domains), which keeps [`sigmoid_slice`] and
//! [`softmax_rows`] within `1e-12` of the scalar references
//! (`logistic::sigmoid`, `logistic::softmax_in_place`) they replace. They are
//! *not* bit-identical to `libm`: callers that need reproducibility must hold
//! the kernel version fixed, which is the same contract the rest of the
//! training stack already follows.

/// log2(e), the factor that turns a natural exponent into a base-2 exponent.
const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// High half of ln(2) for two-part range reduction (musl's split).
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
/// Low half of ln(2); `LN2_HI + LN2_LO` rounds to ln(2) with extra precision.
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// 1.5 * 2^52: adding and subtracting rounds a |t| < 2^51 value to the
/// nearest integer without a branch or a libcall.
const RND_MAGIC: f64 = 6_755_399_441_055_744.0;
/// Inputs are clamped to ±[`EXP_CLAMP`] before range reduction so the scale
/// factor 2^n stays a normal float. exp(708) ≈ 3.0e307 is still finite.
const EXP_CLAMP: f64 = 708.0;

/// Taylor coefficients 1/k! for k = 2..=13, consumed by Horner evaluation.
/// Written with every digit of the decimal expansion (some beyond f64's
/// shortest round-trip form) so the table reads as the literal factorials.
#[allow(clippy::excessive_precision)]
const EXP_POLY: [f64; 12] = [
    0.5,
    1.666_666_666_666_666_6e-1,
    4.166_666_666_666_666_4e-2,
    8.333_333_333_333_333e-3,
    1.388_888_888_888_888_9e-3,
    1.984_126_984_126_984e-4,
    2.480_158_730_158_73e-5,
    2.755_731_922_398_589_3e-6,
    2.755_731_922_398_589e-7,
    2.505_210_838_544_172e-8,
    2.087_675_698_786_81e-9,
    1.605_904_383_682_161_3e-10,
];

/// Odd-power atanh series coefficients 1/(2k+1) for k = 1..=7, used by [`ln`].
const LN_POLY: [f64; 7] = [
    1.0 / 3.0,
    1.0 / 5.0,
    1.0 / 7.0,
    1.0 / 9.0,
    1.0 / 11.0,
    1.0 / 13.0,
    1.0 / 15.0,
];

/// Branch-free polynomial `e^x`.
///
/// Range-reduces `x = n·ln2 + r` with `|r| ≤ ln2/2`, evaluates a fixed
/// degree-13 Taylor polynomial at `r` by Horner's rule, and scales by `2^n`
/// through direct exponent construction. Inputs outside `[-708, 708]` are
/// clamped first, so the result saturates at `exp(±708)` instead of
/// overflowing to infinity or underflowing to zero; every caller in this
/// workspace feeds arguments that are either non-positive (softmax shifts,
/// `-|x|` in sigmoid) or bounded by model weights, where the clamp is
/// unreachable or affects only values below `1e-307`. NaN propagates.
///
/// Relative error against `f64::exp` is a few ulp (< 1e-14) on the clamped
/// domain. The evaluation is straight-line with a single data-independent
/// operation sequence, so results are identical no matter how calls are
/// batched or which thread runs them.
#[inline]
pub fn exp(x: f64) -> f64 {
    let x = x.clamp(-EXP_CLAMP, EXP_CLAMP);
    // Round x/ln2 to the nearest integer without `round()` (which is a
    // libcall at baseline target features and rounds half away from zero).
    let t = x * LOG2_E;
    let n = (t + RND_MAGIC) - RND_MAGIC;
    let r = x - n * LN2_HI - n * LN2_LO;
    // Horner over the fixed Taylor coefficients; the order never varies.
    let mut p = EXP_POLY[11];
    let mut k = 11;
    while k > 0 {
        k -= 1;
        p = p * r + EXP_POLY[k];
    }
    p = (p * r + 1.0) * r + 1.0;
    // 2^n by exponent-field construction; |n| ≤ 1022 after the clamp.
    let scale = f64::from_bits(((n as i64 + 1023) << 52) as u64);
    p * scale
}

/// Polynomial natural logarithm for positive normal floats.
///
/// Decomposes `x = m·2^e` with `m ∈ [√2/2, √2)`, evaluates
/// `ln m = 2·atanh(z)` with `z = (m−1)/(m+1)` through a fixed odd-power
/// series, and recombines with a two-part ln(2). Zero, negative, subnormal,
/// and non-finite inputs fall back to `f64::ln` so edge-case semantics match
/// the standard library exactly. Relative error on the fast path is below
/// `1e-13`; the evaluation order is fixed, so results do not depend on
/// batching or thread count.
#[inline]
pub fn ln(x: f64) -> f64 {
    if x < f64::MIN_POSITIVE || !x.is_finite() {
        // Non-normal domain (≤ 0, subnormal, NaN, ∞): defer to libm.
        return x.ln();
    }
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let z = (m - 1.0) / (m + 1.0);
    let z2 = z * z;
    let mut p = LN_POLY[6];
    let mut k = 6;
    while k > 0 {
        k -= 1;
        p = p * z2 + LN_POLY[k];
    }
    let ln_m = 2.0 * z + 2.0 * z * z2 * p;
    let e = e as f64;
    e * LN2_HI + (ln_m + e * LN2_LO)
}

/// Replaces every score `x` in the slice with `σ(x) = 1 / (1 + e^{-x})`.
///
/// Uses the numerically stable `t = e^{-|x|}` form so large magnitudes never
/// overflow, then selects `1/(1+t)` or its complement by sign. Each element
/// is processed independently with the same straight-line [`exp`] evaluation,
/// so splitting the slice into arbitrary sub-slices and calling the kernel on
/// each yields bitwise-identical results.
pub fn sigmoid_slice(xs: &mut [f64]) {
    for x in xs.iter_mut() {
        let t = exp(-x.abs());
        let p = 1.0 / (1.0 + t);
        *x = if *x >= 0.0 { p } else { 1.0 - p };
    }
}

/// Replaces every element with its natural logarithm via [`ln`].
///
/// Elementwise and order-independent in the same sense as [`sigmoid_slice`]:
/// batching never changes an element's result.
pub fn ln_slice(xs: &mut [f64]) {
    for x in xs.iter_mut() {
        *x = ln(*x);
    }
}

/// In-place stable softmax over one row of scores.
///
/// Subtracts the row maximum (scanned in ascending index order), exponentiates
/// with [`exp`], accumulates the normaliser in ascending index order, and
/// divides through. An empty row is a no-op; a single-element row becomes
/// `[1.0]`. The result depends only on the row contents.
pub fn softmax_row(row: &mut [f64]) {
    if row.is_empty() {
        return;
    }
    let mut max = f64::NEG_INFINITY;
    for &v in row.iter() {
        if v > max {
            max = v;
        }
    }
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = exp(*v - max);
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// Segmented softmax over CSR rows packed in `values`.
///
/// `offsets` holds `rows + 1` monotone offsets with `offsets[0]` as the base:
/// row `i` occupies `values[offsets[i] - offsets[0] .. offsets[i+1] - offsets[0]]`.
/// This shape lets callers pass a chunk's sub-slice of a global CSR buffer
/// together with the matching window of the global offset array, without
/// rebasing either. Each row is normalised independently by [`softmax_row`],
/// so the per-row results are bitwise-identical whether rows are scored one
/// at a time, in this batch, or in any other partition into batches.
///
/// # Panics
/// Panics if `offsets` is non-monotone or addresses past the end of `values`.
pub fn softmax_rows(values: &mut [f64], offsets: &[u32]) {
    let Some(&base) = offsets.first() else {
        return;
    };
    let base = base as usize;
    for pair in offsets.windows(2) {
        let start = pair[0] as usize - base;
        let end = pair[1] as usize - base;
        softmax_row(&mut values[start..end]);
    }
}

/// Weight lookup treating out-of-range parameter indices as zero, mirroring
/// `SparseVec::dot` on a short dense vector.
#[inline]
fn weight_at(weights: &[f64], index: u32) -> f64 {
    weights.get(index as usize).copied().unwrap_or(0.0)
}

/// Dot product of one CSR row (`params[j]` indexes into `weights`, scaled by
/// `values[j]`) against a dense weight vector.
///
/// Uses four accumulator lanes in a **fixed summation order**: lane `l` sums
/// the terms at positions `j ≡ l (mod 4)` of the full 4-wide chunks in
/// ascending order, the `n % 4` remainder terms fold into lanes `0..n%4` in
/// order, and the combine is always `(acc0 + acc1) + (acc2 + acc3)`. The
/// order is a function of the row length alone — never of thread count or
/// chunk placement — so repeated evaluations are bitwise-identical. The
/// unroll breaks the sequential dependency chain of a naive accumulation,
/// letting independent multiply-adds overlap.
///
/// Indices at or beyond `weights.len()` contribute zero, matching the
/// `SparseVec::dot` convention for parameters outside the model.
///
/// # Panics
/// Panics if `values` is shorter than `params`.
pub fn dot_csr(params: &[u32], values: &[f64], weights: &[f64]) -> f64 {
    let n = params.len();
    let values = &values[..n];
    let mut acc = [0.0f64; 4];
    let full = n - (n % 4);
    let mut j = 0;
    while j < full {
        acc[0] += weight_at(weights, params[j]) * values[j];
        acc[1] += weight_at(weights, params[j + 1]) * values[j + 1];
        acc[2] += weight_at(weights, params[j + 2]) * values[j + 2];
        acc[3] += weight_at(weights, params[j + 3]) * values[j + 3];
        j += 4;
    }
    let mut lane = 0;
    while j < n {
        acc[lane] += weight_at(weights, params[j]) * values[j];
        lane += 1;
        j += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Scaled sparse scatter-add: `out[params[j]] += scale * values[j]` for each
/// position `j` in ascending order.
///
/// The strict in-order application makes repeated-index rows deterministic,
/// and indices at or beyond `out.len()` are dropped — the same convention the
/// dense gradient reducer applies to out-of-model parameters.
///
/// # Panics
/// Panics if `values` is shorter than `params`.
pub fn axpy_scatter(scale: f64, params: &[u32], values: &[f64], out: &mut [f64]) {
    let n = params.len();
    let values = &values[..n];
    for j in 0..n {
        if let Some(slot) = out.get_mut(params[j] as usize) {
            *slot += scale * values[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(1e-300)
    }

    #[test]
    fn exp_matches_libm_over_wide_range() {
        let mut x = -700.0;
        while x <= 700.0 {
            let got = exp(x);
            let want = x.exp();
            assert!(
                rel_err(got, want) < 1e-13,
                "exp({x}): got {got:e}, want {want:e}"
            );
            x += 0.3141592653589793;
        }
        assert_eq!(exp(0.0), 1.0);
        assert!(exp(f64::NAN).is_nan());
        // Saturation below the clamp: tiny but finite, within absolute 1e-300.
        assert!(exp(-1000.0) >= 0.0 && exp(-1000.0) < 1e-300);
    }

    #[test]
    fn ln_matches_libm_over_wide_range() {
        let mut x = 1e-12f64;
        while x < 1e12 {
            let got = ln(x);
            let want = x.ln();
            assert!(
                (got - want).abs() < 1e-12 * want.abs().max(1.0),
                "ln({x:e}): got {got}, want {want}"
            );
            x *= 1.7;
        }
        assert_eq!(ln(1.0), 0.0);
        assert_eq!(ln(0.0), f64::NEG_INFINITY);
        assert!(ln(-1.0).is_nan());
    }

    #[test]
    fn sigmoid_slice_is_stable_and_symmetric() {
        let mut xs = vec![-745.0, -30.0, -1.5, 0.0, 1.5, 30.0, 745.0];
        sigmoid_slice(&mut xs);
        assert!(xs[0] >= 0.0 && xs[0] < 1e-12);
        assert_eq!(xs[3], 0.5);
        assert!(xs[6] > 1.0 - 1e-12 && xs[6] <= 1.0);
        for (lo, hi) in xs.iter().zip(xs.iter().rev()) {
            assert!((lo + hi - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn sigmoid_slice_batching_is_bitwise_invariant() {
        let xs: Vec<f64> = (0..257).map(|i| (i as f64 - 128.0) * 0.37).collect();
        let mut whole = xs.clone();
        sigmoid_slice(&mut whole);
        for split in [1usize, 3, 64, 256] {
            let mut parts = xs.clone();
            let (a, b) = parts.split_at_mut(split);
            sigmoid_slice(a);
            sigmoid_slice(b);
            assert_eq!(parts, whole, "split at {split} changed bits");
        }
    }

    #[test]
    fn softmax_rows_matches_row_at_a_time_bitwise() {
        let values: Vec<f64> = (0..24)
            .map(|i| ((i * 7919) % 13) as f64 * 0.25 - 1.5)
            .collect();
        let offsets: Vec<u32> = vec![100, 102, 102, 105, 112, 124];
        let mut batched = values.clone();
        softmax_rows(&mut batched, &offsets);
        let mut single = values.clone();
        for pair in offsets.windows(2) {
            let (s, e) = (pair[0] as usize - 100, pair[1] as usize - 100);
            softmax_row(&mut single[s..e]);
        }
        assert_eq!(batched, single);
        // Rows sum to 1.
        for pair in offsets.windows(2) {
            let (s, e) = (pair[0] as usize - 100, pair[1] as usize - 100);
            if s == e {
                continue;
            }
            let sum: f64 = batched[s..e].iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dot_csr_is_exact_on_representable_inputs_and_drops_oob() {
        let params: Vec<u32> = vec![0, 2, 4, 9, 1, 3, 99];
        let values: Vec<f64> = vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
        let weights: Vec<f64> = (0..10).map(|i| i as f64).collect();
        // Exact in f64: 0 + 4 + 16 + 72 + 16 + 96 + (oob -> 0)
        assert_eq!(dot_csr(&params, &values, &weights), 204.0);
        assert_eq!(dot_csr(&[], &[], &weights), 0.0);
    }

    #[test]
    fn dot_csr_order_is_length_deterministic() {
        // Same row evaluated twice must agree bitwise, including via sub-slices
        // of a larger backing store (alignment must not matter).
        let params: Vec<u32> = (0..31).map(|i| (i * 5) % 23).collect();
        let values: Vec<f64> = (0..31).map(|i| (i as f64 * 0.1).sin()).collect();
        let weights: Vec<f64> = (0..23).map(|i| ((i * i) as f64 * 0.01).cos()).collect();
        let a = dot_csr(&params, &values, &weights);
        let b = dot_csr(&params[..], &values[..], &weights);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn axpy_scatter_accumulates_in_order_and_drops_oob() {
        let mut out = vec![0.0f64; 4];
        axpy_scatter(2.0, &[1, 3, 1, 9], &[1.0, 2.0, 3.0, 4.0], &mut out);
        assert_eq!(out, vec![0.0, 8.0, 0.0, 4.0]);
    }
}
