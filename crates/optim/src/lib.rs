//! # slimfast-optim
//!
//! Optimization substrate for the SLiMFast workspace.
//!
//! The paper learns its discriminative model with stochastic gradient descent (over
//! DeepDive's DimmWitted sampler); this crate provides the equivalent numerical machinery
//! in pure Rust:
//!
//! * [`sparse::SparseVec`] — sparse feature vectors used by every learner.
//! * [`schedule::LearningRate`] — step-size schedules for SGD.
//! * [`penalty::Penalty`] — `L1` / `L2` / elastic-net regularization, including the
//!   proximal (soft-thresholding) update that makes `L1` produce exactly-sparse weights,
//!   which Theorem 2's `√(k log|K|)` refinement and the lasso-path analysis rely on.
//! * [`exec`] / [`pool`] — the deterministic parallel executor: a process-wide
//!   persistent worker pool plus fixed-chunk-grid primitives whose results are
//!   bitwise-identical at any thread count.
//! * [`kernels`] — batched, bitwise-deterministic sigmoid/softmax/dot/scatter
//!   kernels over flat structure-of-arrays slices; every training and serving
//!   hot loop bottoms out here.
//! * [`sgd`] — a small SGD/AdaGrad engine over user-supplied stochastic objectives.
//! * [`logistic`] — binary and conditional (multiclass, shared-weight) logistic regression
//!   with hard or fractional targets; the fractional form is what EM's M-step needs.
//! * [`lasso`] — the lasso path (Section 5.3.1, Figures 6 and 9).
//! * [`matrix`] — rank-one matrix completion used by the optimizer to estimate the average
//!   source accuracy from the pairwise agreement matrix (Section 4.3).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod exec;
pub mod kernels;
pub mod lasso;
pub mod logistic;
pub mod matrix;
pub mod penalty;
pub mod pool;
pub mod schedule;
pub mod sgd;
pub mod sparse;

pub use lasso::{lasso_path, LassoPath};
pub use logistic::{
    log_loss, sigmoid, softmax_in_place, BinaryExample, BinaryLogisticRegression,
    ConditionalExample, ConditionalLogit, Target,
};
pub use matrix::{rank_one_completion, rank_one_factorize, AgreementMatrix};
pub use penalty::Penalty;
pub use pool::{JobHandle, JobPanic, WorkerPool};
pub use schedule::LearningRate;
pub use sgd::{auto_batch_size, minimize, FitResult, SgdConfig, StochasticObjective};
pub use sparse::SparseVec;
