//! Regularization penalties.
//!
//! The paper leans on `L2` regularization for stable ERM/EM learning and on `L1`
//! regularization for feature selection: Theorem 2's refinement shows the source-accuracy
//! estimation error scales with the number of *predictive* features when `L1` drives the
//! uninformative ones to exactly zero, and the lasso-path analysis (Figures 6 and 9)
//! sweeps the `L1` strength.

/// A regularization penalty added to the (negative log-likelihood) objective.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Penalty {
    /// No regularization.
    #[default]
    None,
    /// `lambda * ||w||_1`; applied through a proximal (soft-thresholding) step so weights
    /// become exactly zero.
    L1(
        /// Regularization strength `lambda`.
        f64,
    ),
    /// `lambda / 2 * ||w||_2^2`; applied through the gradient.
    L2(
        /// Regularization strength `lambda`.
        f64,
    ),
    /// Elastic net: `l1 * ||w||_1 + l2 / 2 * ||w||_2^2`.
    ElasticNet {
        /// `L1` strength.
        l1: f64,
        /// `L2` strength.
        l2: f64,
    },
}

impl Penalty {
    /// The penalty value at `w`.
    pub fn value(&self, w: &[f64]) -> f64 {
        let l1: f64 = w.iter().map(|x| x.abs()).sum();
        let l2: f64 = w.iter().map(|x| x * x).sum::<f64>() / 2.0;
        match *self {
            Penalty::None => 0.0,
            Penalty::L1(lambda) => lambda * l1,
            Penalty::L2(lambda) => lambda * l2,
            Penalty::ElasticNet { l1: a, l2: b } => a * l1 + b * l2,
        }
    }

    /// The smooth (differentiable) part of the penalty gradient at coordinate value `w_i`.
    /// `L1` contributes nothing here — it is handled by [`Penalty::proximal`].
    pub fn smooth_gradient(&self, w_i: f64) -> f64 {
        match *self {
            Penalty::None | Penalty::L1(_) => 0.0,
            Penalty::L2(lambda) => lambda * w_i,
            Penalty::ElasticNet { l2, .. } => l2 * w_i,
        }
    }

    /// Proximal operator for the non-smooth (`L1`) part with step size `step`:
    /// soft-thresholding `sign(w) * max(|w| - step * l1, 0)`.
    pub fn proximal(&self, w_i: f64, step: f64) -> f64 {
        let l1 = match *self {
            Penalty::L1(lambda) => lambda,
            Penalty::ElasticNet { l1, .. } => l1,
            _ => return w_i,
        };
        let threshold = step * l1;
        if w_i > threshold {
            w_i - threshold
        } else if w_i < -threshold {
            w_i + threshold
        } else {
            0.0
        }
    }

    /// The `L1` strength, if any (used by the lasso path to label sweeps).
    pub fn l1_strength(&self) -> f64 {
        match *self {
            Penalty::L1(lambda) => lambda,
            Penalty::ElasticNet { l1, .. } => l1,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_match_hand_computation() {
        let w = [1.0, -2.0, 0.0];
        assert_eq!(Penalty::None.value(&w), 0.0);
        assert!((Penalty::L1(0.5).value(&w) - 1.5).abs() < 1e-12);
        assert!((Penalty::L2(2.0).value(&w) - 5.0).abs() < 1e-12);
        assert!((Penalty::ElasticNet { l1: 1.0, l2: 2.0 }.value(&w) - (3.0 + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn l2_gradient_is_linear() {
        assert!((Penalty::L2(0.1).smooth_gradient(3.0) - 0.3).abs() < 1e-12);
        assert_eq!(Penalty::L1(0.1).smooth_gradient(3.0), 0.0);
        assert_eq!(Penalty::None.smooth_gradient(3.0), 0.0);
    }

    #[test]
    fn soft_thresholding_shrinks_toward_zero() {
        let p = Penalty::L1(1.0);
        assert_eq!(p.proximal(0.5, 1.0), 0.0);
        assert_eq!(p.proximal(-0.5, 1.0), 0.0);
        assert!((p.proximal(2.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((p.proximal(-2.0, 1.0) + 1.0).abs() < 1e-12);
        // L2 leaves the weight unchanged in the proximal step.
        assert_eq!(Penalty::L2(1.0).proximal(2.0, 1.0), 2.0);
    }

    #[test]
    fn l1_strength_is_extracted() {
        assert_eq!(Penalty::L1(0.3).l1_strength(), 0.3);
        assert_eq!(Penalty::ElasticNet { l1: 0.2, l2: 0.1 }.l1_strength(), 0.2);
        assert_eq!(Penalty::L2(0.3).l1_strength(), 0.0);
        assert_eq!(Penalty::None.l1_strength(), 0.0);
    }
}
