//! Rank-one matrix completion over the pairwise source-agreement matrix.
//!
//! SLiMFast's optimizer (Section 4.3) estimates the *average* source accuracy from the
//! agreement rates of source pairs: with all sources at accuracy `A` and `μ = 2A − 1`, the
//! expected agreement-rate entry is `E[X_ij] = μ²`, so `μ̂ = sqrt(mean(X_ij))` is the
//! closed-form solution of `min ½‖X − μ²‖²`. The paper also notes the setup extends to a
//! per-source accuracy via a general rank-one completion `X_ij ≈ μ_i μ_j`, which
//! [`rank_one_factorize`] solves with SGD.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A symmetric matrix of observed pairwise agreement scores with missing entries.
///
/// Entry `(i, j)` holds the signed agreement rate of sources `i` and `j` over the objects
/// they both observe: `+1` for full agreement, `−1` for full disagreement, `None` when the
/// pair shares no object.
#[derive(Debug, Clone)]
pub struct AgreementMatrix {
    n: usize,
    entries: Vec<Option<f64>>,
}

impl AgreementMatrix {
    /// Creates an `n × n` matrix with every entry missing.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            entries: vec![None; n * n],
        }
    }

    /// Matrix dimension (number of sources).
    pub fn dimension(&self) -> usize {
        self.n
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        i * self.n + j
    }

    /// Sets the symmetric entry `(i, j)` / `(j, i)`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "agreement index out of bounds");
        let a = self.idx(i, j);
        let b = self.idx(j, i);
        self.entries[a] = Some(value);
        self.entries[b] = Some(value);
    }

    /// Reads entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        self.entries.get(self.idx(i, j)).copied().flatten()
    }

    /// Iterates over observed off-diagonal entries `(i, j, value)` with `i < j`.
    pub fn observed(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            ((i + 1)..self.n).filter_map(move |j| self.get(i, j).map(|v| (i, j, v)))
        })
    }

    /// Number of observed off-diagonal pairs.
    pub fn num_observed(&self) -> usize {
        self.observed().count()
    }

    /// Mean of observed off-diagonal entries, `None` when nothing is observed.
    pub fn mean_off_diagonal(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (_, _, v) in self.observed() {
            sum += v;
            count += 1;
        }
        if count == 0 {
            None
        } else {
            Some(sum / count as f64)
        }
    }
}

/// Closed-form rank-one completion under a shared accuracy: returns `μ̂ = sqrt(mean X_ij)`
/// clamped into `[0, 1]`. Returns `None` when no pair of sources overlaps.
pub fn rank_one_completion(matrix: &AgreementMatrix) -> Option<f64> {
    matrix
        .mean_off_diagonal()
        .map(|mean| mean.max(0.0).sqrt().min(1.0))
}

/// General rank-one completion `X_ij ≈ μ_i μ_j` solved by SGD, returning one `μ_s` per
/// source clamped into `[0, 1]` (so `A_s = (μ_s + 1) / 2` is a valid accuracy).
///
/// Sources with no observed pair keep the shared estimate from
/// [`rank_one_completion`] (or `0.0` when that is unavailable).
pub fn rank_one_factorize(
    matrix: &AgreementMatrix,
    epochs: usize,
    learning_rate: f64,
    seed: u64,
) -> Vec<f64> {
    let n = matrix.dimension();
    let shared = rank_one_completion(matrix).unwrap_or(0.0);
    let mut mu = vec![shared.max(0.05); n];
    let pairs: Vec<(usize, usize, f64)> = matrix.observed().collect();
    if pairs.is_empty() {
        return vec![shared; n];
    }
    let mut observed_mask = vec![false; n];
    for &(i, j, _) in &pairs {
        observed_mask[i] = true;
        observed_mask[j] = true;
    }
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for epoch in 0..epochs {
        order.shuffle(&mut rng);
        let eta = learning_rate / (1.0 + epoch as f64).sqrt();
        for &p in &order {
            let (i, j, x) = pairs[p];
            let err = mu[i] * mu[j] - x;
            let gi = err * mu[j];
            let gj = err * mu[i];
            mu[i] = (mu[i] - eta * gi).clamp(0.0, 1.0);
            mu[j] = (mu[j] - eta * gj).clamp(0.0, 1.0);
        }
    }
    for (s, observed) in observed_mask.iter().enumerate() {
        if !observed {
            mu[s] = shared;
        }
    }
    mu
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_matrix(mu: &[f64]) -> AgreementMatrix {
        let mut m = AgreementMatrix::new(mu.len());
        for i in 0..mu.len() {
            for j in (i + 1)..mu.len() {
                m.set(i, j, mu[i] * mu[j]);
            }
        }
        m
    }

    #[test]
    fn set_get_is_symmetric() {
        let mut m = AgreementMatrix::new(3);
        m.set(0, 2, 0.5);
        assert_eq!(m.get(0, 2), Some(0.5));
        assert_eq!(m.get(2, 0), Some(0.5));
        assert_eq!(m.get(1, 2), None);
        assert_eq!(m.num_observed(), 1);
    }

    #[test]
    fn closed_form_recovers_shared_mu() {
        // All sources share accuracy 0.8 => mu = 0.6, entries = 0.36.
        let m = full_matrix(&[0.6, 0.6, 0.6, 0.6]);
        let mu_hat = rank_one_completion(&m).unwrap();
        assert!((mu_hat - 0.6).abs() < 1e-9);
    }

    #[test]
    fn closed_form_clamps_negative_means_to_zero() {
        let mut m = AgreementMatrix::new(2);
        m.set(0, 1, -0.3);
        assert_eq!(rank_one_completion(&m), Some(0.0));
    }

    #[test]
    fn empty_matrix_has_no_estimate() {
        let m = AgreementMatrix::new(5);
        assert_eq!(rank_one_completion(&m), None);
        assert_eq!(m.mean_off_diagonal(), None);
        let mu = rank_one_factorize(&m, 10, 0.1, 0);
        assert_eq!(mu, vec![0.0; 5]);
    }

    #[test]
    fn factorization_recovers_heterogeneous_mu() {
        let truth = [0.9, 0.7, 0.5, 0.3, 0.8, 0.6];
        let m = full_matrix(&truth);
        let mu = rank_one_factorize(&m, 500, 0.5, 42);
        for (est, actual) in mu.iter().zip(truth.iter()) {
            assert!(
                (est - actual).abs() < 0.1,
                "estimated {est}, wanted {actual}"
            );
        }
    }

    #[test]
    fn factorization_falls_back_for_isolated_sources() {
        // Source 2 never overlaps with anyone.
        let mut m = AgreementMatrix::new(3);
        m.set(0, 1, 0.36);
        let mu = rank_one_factorize(&m, 100, 0.5, 1);
        assert!(
            (mu[2] - 0.6).abs() < 1e-9,
            "isolated source should use the shared estimate"
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_set_panics() {
        let mut m = AgreementMatrix::new(2);
        m.set(0, 5, 1.0);
    }
}
