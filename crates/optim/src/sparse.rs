//! Sparse vectors over a dense parameter space.

/// A sparse vector stored as `(index, value)` pairs.
///
/// SLiMFast's model has one parameter per source plus one per domain feature; any single
/// observation touches only a handful of them, so gradients and feature vectors are sparse.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    entries: Vec<(usize, f64)>,
}

impl SparseVec {
    /// Creates an empty sparse vector.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Creates a sparse vector from raw `(index, value)` pairs.
    /// Later duplicates of an index accumulate into the earlier entry.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (usize, f64)>) -> Self {
        let mut v = Self::new();
        for (i, x) in pairs {
            v.add(i, x);
        }
        v
    }

    /// Removes all entries, keeping the allocation (scratch-buffer reuse on hot paths).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Adds `value` to the coefficient at `index`.
    pub fn add(&mut self, index: usize, value: f64) {
        if value == 0.0 {
            return;
        }
        if let Some(slot) = self.entries.iter_mut().find(|(i, _)| *i == index) {
            slot.1 += value;
        } else {
            self.entries.push((index, value));
        }
    }

    /// Iterates over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector stores no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Dot product against a dense weight vector. Out-of-range indices contribute zero.
    pub fn dot(&self, dense: &[f64]) -> f64 {
        self.entries
            .iter()
            .map(|&(i, x)| dense.get(i).copied().unwrap_or(0.0) * x)
            .sum()
    }

    /// Adds `scale * self` into a dense accumulator, growing it if needed.
    pub fn add_scaled_into(&self, scale: f64, dense: &mut Vec<f64>) {
        for &(i, x) in &self.entries {
            if i >= dense.len() {
                dense.resize(i + 1, 0.0);
            }
            dense[i] += scale * x;
        }
    }

    /// Largest index referenced plus one (0 for an empty vector).
    pub fn dimension(&self) -> usize {
        self.entries.iter().map(|&(i, _)| i + 1).max().unwrap_or(0)
    }
}

impl FromIterator<(usize, f64)> for SparseVec {
    fn from_iter<T: IntoIterator<Item = (usize, f64)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_accumulate_and_zeros_are_dropped() {
        let v = SparseVec::from_pairs([(3, 1.0), (3, 2.0), (1, 0.0)]);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.iter().next(), Some((3, 3.0)));
        assert_eq!(v.dimension(), 4);
    }

    #[test]
    fn dot_ignores_out_of_range_indices() {
        let v = SparseVec::from_pairs([(0, 2.0), (5, 3.0)]);
        let dense = vec![1.0, 0.0, 0.0];
        assert_eq!(v.dot(&dense), 2.0);
    }

    #[test]
    fn add_scaled_grows_the_accumulator() {
        let v = SparseVec::from_pairs([(2, 1.5)]);
        let mut acc = vec![0.0; 1];
        v.add_scaled_into(2.0, &mut acc);
        assert_eq!(acc, vec![0.0, 0.0, 3.0]);
    }

    #[test]
    fn empty_vector_behaves() {
        let v = SparseVec::new();
        assert!(v.is_empty());
        assert_eq!(v.dot(&[1.0, 2.0]), 0.0);
        assert_eq!(v.dimension(), 0);
    }
}
