//! Binary and conditional (shared-weight multiclass) logistic regression.
//!
//! SLiMFast's ERM objective is exactly a conditional logistic regression: for every object
//! the candidate classes are the distinct values in its domain, the "feature vector" of a
//! class aggregates the source-indicator and domain features of the sources voting for that
//! value, and all classes share one weight vector (Equation 4 of the paper). EM's M-step is
//! the same model with *fractional* targets given by the E-step posterior. The source
//! accuracy model of Equation 3 is a plain binary logistic regression over source features.

use crate::penalty::Penalty;
use crate::sgd::{minimize, FitResult, SgdConfig, StochasticObjective};
use crate::sparse::SparseVec;

/// Numerically stable logistic function `1 / (1 + e^{-x})`.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `log(1 + e^x)`.
#[inline]
pub fn log1pexp(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Binary cross-entropy `-(y ln p + (1-y) ln(1-p))` with probability clamping.
#[inline]
pub fn log_loss(p: f64, y: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
}

/// In-place stable softmax over a score vector.
pub fn softmax_in_place(scores: &mut [f64]) {
    if scores.is_empty() {
        return;
    }
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    for s in scores.iter_mut() {
        *s /= sum;
    }
}

/// One (possibly fractionally labelled, weighted) binary training example.
#[derive(Debug, Clone)]
pub struct BinaryExample {
    /// Sparse feature vector.
    pub features: SparseVec,
    /// Target in `[0, 1]`; fractional targets express soft labels.
    pub target: f64,
    /// Example weight (1.0 for ordinary examples).
    pub weight: f64,
}

impl BinaryExample {
    /// An example with unit weight.
    pub fn new(features: SparseVec, target: f64) -> Self {
        Self {
            features,
            target,
            weight: 1.0,
        }
    }

    /// An example with an explicit weight.
    pub fn weighted(features: SparseVec, target: f64, weight: f64) -> Self {
        Self {
            features,
            target,
            weight,
        }
    }
}

struct BinaryObjective<'a> {
    examples: &'a [BinaryExample],
    num_params: usize,
}

impl StochasticObjective for BinaryObjective<'_> {
    fn num_params(&self) -> usize {
        self.num_params
    }

    fn num_examples(&self) -> usize {
        self.examples.len()
    }

    fn example_loss_grad(&self, w: &[f64], example: usize, grad: &mut SparseVec) -> f64 {
        let ex = &self.examples[example];
        let p = sigmoid(ex.features.dot(w));
        let err = ex.weight * (p - ex.target);
        for (i, v) in ex.features.iter() {
            grad.add(i, err * v);
        }
        ex.weight * log_loss(p, ex.target)
    }
}

/// A fitted binary logistic regression model.
#[derive(Debug, Clone)]
pub struct BinaryLogisticRegression {
    weights: Vec<f64>,
    fit: Option<FitResult>,
}

impl BinaryLogisticRegression {
    /// Wraps an externally produced weight vector.
    pub fn from_weights(weights: Vec<f64>) -> Self {
        Self { weights, fit: None }
    }

    /// Fits the model on `examples` over a parameter space of dimension `num_params`.
    pub fn fit(examples: &[BinaryExample], num_params: usize, config: &SgdConfig) -> Self {
        Self::fit_warm(examples, num_params, config, None)
    }

    /// Fits with warm-start weights (used by the lasso path and EM).
    pub fn fit_warm(
        examples: &[BinaryExample],
        num_params: usize,
        config: &SgdConfig,
        init: Option<Vec<f64>>,
    ) -> Self {
        let objective = BinaryObjective {
            examples,
            num_params,
        };
        let fit = minimize(&objective, init, config);
        Self {
            weights: fit.weights.clone(),
            fit: Some(fit),
        }
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Details of the SGD run, when the model was fitted (as opposed to wrapped).
    pub fn fit_result(&self) -> Option<&FitResult> {
        self.fit.as_ref()
    }

    /// Predicted probability of the positive class for a feature vector.
    pub fn predict_proba(&self, features: &SparseVec) -> f64 {
        sigmoid(features.dot(&self.weights))
    }

    /// Mean log-loss over a set of examples.
    pub fn mean_log_loss(&self, examples: &[BinaryExample]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let total: f64 = examples
            .iter()
            .map(|ex| ex.weight * log_loss(self.predict_proba(&ex.features), ex.target))
            .sum();
        total / examples.len() as f64
    }
}

/// The target of a conditional (multiclass) example.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// The index of the correct class.
    Hard(usize),
    /// A distribution over classes (used by EM's M-step with posterior targets).
    Soft(Vec<f64>),
}

/// One conditional logistic-regression example: a set of candidate classes, each with its
/// own sparse feature vector, sharing a single weight vector.
#[derive(Debug, Clone)]
pub struct ConditionalExample {
    /// Per-class sparse feature vectors.
    pub classes: Vec<SparseVec>,
    /// The (hard or soft) target.
    pub target: Target,
    /// Example weight.
    pub weight: f64,
}

impl ConditionalExample {
    /// A hard-labelled example with unit weight.
    pub fn new(classes: Vec<SparseVec>, label: usize) -> Self {
        Self {
            classes,
            target: Target::Hard(label),
            weight: 1.0,
        }
    }

    /// A soft-labelled example with unit weight.
    pub fn soft(classes: Vec<SparseVec>, distribution: Vec<f64>) -> Self {
        Self {
            classes,
            target: Target::Soft(distribution),
            weight: 1.0,
        }
    }

    fn target_prob(&self, class: usize) -> f64 {
        match &self.target {
            Target::Hard(label) => {
                if class == *label {
                    1.0
                } else {
                    0.0
                }
            }
            Target::Soft(dist) => dist.get(class).copied().unwrap_or(0.0),
        }
    }
}

struct ConditionalObjective<'a> {
    examples: &'a [ConditionalExample],
    num_params: usize,
}

impl StochasticObjective for ConditionalObjective<'_> {
    fn num_params(&self) -> usize {
        self.num_params
    }

    fn num_examples(&self) -> usize {
        self.examples.len()
    }

    fn example_loss_grad(&self, w: &[f64], example: usize, grad: &mut SparseVec) -> f64 {
        let ex = &self.examples[example];
        if ex.classes.is_empty() {
            return 0.0;
        }
        let mut probs: Vec<f64> = ex.classes.iter().map(|x| x.dot(w)).collect();
        softmax_in_place(&mut probs);
        let mut loss = 0.0;
        for (c, x) in ex.classes.iter().enumerate() {
            let t = ex.target_prob(c);
            let err = ex.weight * (probs[c] - t);
            for (i, v) in x.iter() {
                grad.add(i, err * v);
            }
            if t > 0.0 {
                loss += -t * probs[c].clamp(1e-12, 1.0).ln();
            }
        }
        ex.weight * loss
    }
}

/// A fitted conditional logistic regression (multiclass with shared weights).
#[derive(Debug, Clone)]
pub struct ConditionalLogit {
    weights: Vec<f64>,
    fit: Option<FitResult>,
}

impl ConditionalLogit {
    /// Wraps an externally produced weight vector.
    pub fn from_weights(weights: Vec<f64>) -> Self {
        Self { weights, fit: None }
    }

    /// Fits the model.
    pub fn fit(examples: &[ConditionalExample], num_params: usize, config: &SgdConfig) -> Self {
        Self::fit_warm(examples, num_params, config, None)
    }

    /// Fits the model starting from `init` weights.
    pub fn fit_warm(
        examples: &[ConditionalExample],
        num_params: usize,
        config: &SgdConfig,
        init: Option<Vec<f64>>,
    ) -> Self {
        let objective = ConditionalObjective {
            examples,
            num_params,
        };
        let fit = minimize(&objective, init, config);
        Self {
            weights: fit.weights.clone(),
            fit: Some(fit),
        }
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Details of the SGD run, when fitted.
    pub fn fit_result(&self) -> Option<&FitResult> {
        self.fit.as_ref()
    }

    /// Class posterior for a set of candidate classes.
    pub fn predict_proba(&self, classes: &[SparseVec]) -> Vec<f64> {
        let mut scores: Vec<f64> = classes.iter().map(|x| x.dot(&self.weights)).collect();
        softmax_in_place(&mut scores);
        scores
    }

    /// Mean negative log-likelihood over a set of examples.
    pub fn mean_log_loss(&self, examples: &[ConditionalExample]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for ex in examples {
            let probs = self.predict_proba(&ex.classes);
            for (c, &p) in probs.iter().enumerate() {
                let t = ex.target_prob(c);
                if t > 0.0 {
                    total += -ex.weight * t * p.clamp(1e-12, 1.0).ln();
                }
            }
        }
        total / examples.len() as f64
    }
}

/// Helper fitting a binary logistic regression with the given penalty; used by callers that
/// only need a one-liner (source-quality initialization, the optimizer's diagnostics).
pub fn fit_binary(
    examples: &[BinaryExample],
    num_params: usize,
    penalty: Penalty,
    epochs: usize,
    seed: u64,
) -> BinaryLogisticRegression {
    let config = SgdConfig {
        epochs,
        penalty,
        seed,
        ..SgdConfig::default()
    };
    BinaryLogisticRegression::fit(examples, num_params, &config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(800.0) <= 1.0);
        assert!(sigmoid(-800.0) >= 0.0);
        for x in [-5.0, -1.0, 0.3, 4.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn log1pexp_matches_naive_in_safe_range() {
        for x in [-10.0f64, -1.0, 0.0, 1.0, 10.0] {
            let naive = (1.0f64 + x.exp()).ln();
            assert!((log1pexp(x) - naive).abs() < 1e-9);
        }
        assert!((log1pexp(1000.0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let mut scores = vec![1.0, 3.0, 2.0];
        softmax_in_place(&mut scores);
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(scores[1] > scores[2] && scores[2] > scores[0]);
        // Extreme scores do not overflow.
        let mut extreme = vec![1e4, -1e4];
        softmax_in_place(&mut extreme);
        assert!(extreme[0] > 0.999 && extreme[1] < 1e-3);
    }

    fn separable_examples() -> Vec<BinaryExample> {
        // Positive iff feature 0 is active.
        let mut examples = Vec::new();
        for i in 0..200 {
            let positive = i % 2 == 0;
            let features = if positive {
                SparseVec::from_pairs([(0, 1.0), (1, (i % 3) as f64 * 0.1)])
            } else {
                SparseVec::from_pairs([(1, (i % 3) as f64 * 0.1), (2, 1.0)])
            };
            examples.push(BinaryExample::new(
                features,
                if positive { 1.0 } else { 0.0 },
            ));
        }
        examples
    }

    #[test]
    fn binary_regression_separates_separable_data() {
        let examples = separable_examples();
        let config = SgdConfig {
            epochs: 100,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let model = BinaryLogisticRegression::fit(&examples, 3, &config);
        let pos = model.predict_proba(&SparseVec::from_pairs([(0, 1.0)]));
        let neg = model.predict_proba(&SparseVec::from_pairs([(2, 1.0)]));
        assert!(pos > 0.9, "positive-class probability too low: {pos}");
        assert!(neg < 0.1, "negative-class probability too high: {neg}");
        assert!(model.mean_log_loss(&examples) < 0.2);
    }

    #[test]
    fn fractional_targets_move_probabilities_to_the_target() {
        // A single always-on feature and a fractional target of 0.7: the fitted
        // probability should approach 0.7 (the minimizer of expected log-loss).
        let examples = vec![BinaryExample::new(SparseVec::from_pairs([(0, 1.0)]), 0.7); 100];
        let config = SgdConfig {
            epochs: 300,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let model = BinaryLogisticRegression::fit(&examples, 1, &config);
        let p = model.predict_proba(&SparseVec::from_pairs([(0, 1.0)]));
        assert!((p - 0.7).abs() < 0.03, "p = {p}");
    }

    #[test]
    fn conditional_logit_learns_class_preferences() {
        // Two classes; class feature 0 is the signal for the correct class.
        let mut examples = Vec::new();
        for i in 0..200 {
            let correct_first = i % 2 == 0;
            let strong = SparseVec::from_pairs([(0, 1.0)]);
            let weak = SparseVec::from_pairs([(1, 1.0)]);
            let (classes, label) = if correct_first {
                (vec![strong.clone(), weak.clone()], 0)
            } else {
                (vec![weak.clone(), strong.clone()], 1)
            };
            examples.push(ConditionalExample::new(classes, label));
        }
        let config = SgdConfig {
            epochs: 100,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let model = ConditionalLogit::fit(&examples, 2, &config);
        let probs = model.predict_proba(&[
            SparseVec::from_pairs([(0, 1.0)]),
            SparseVec::from_pairs([(1, 1.0)]),
        ]);
        assert!(probs[0] > 0.9, "probs = {probs:?}");
        assert!(model.mean_log_loss(&examples) < 0.2);
    }

    #[test]
    fn soft_targets_are_respected() {
        // Single example repeated; soft target [0.8, 0.2] with distinct class features.
        let classes = vec![
            SparseVec::from_pairs([(0, 1.0)]),
            SparseVec::from_pairs([(1, 1.0)]),
        ];
        let examples = vec![ConditionalExample::soft(classes.clone(), vec![0.8, 0.2]); 200];
        let config = SgdConfig {
            epochs: 300,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let model = ConditionalLogit::fit(&examples, 2, &config);
        let probs = model.predict_proba(&classes);
        assert!((probs[0] - 0.8).abs() < 0.05, "probs = {probs:?}");
    }

    #[test]
    fn empty_class_list_contributes_no_loss() {
        let examples = vec![ConditionalExample::new(Vec::new(), 0)];
        let config = SgdConfig {
            epochs: 2,
            ..SgdConfig::default()
        };
        let model = ConditionalLogit::fit(&examples, 3, &config);
        assert_eq!(model.weights().len(), 3);
    }

    #[test]
    fn helper_fit_binary_produces_a_model() {
        let examples = separable_examples();
        let model = fit_binary(&examples, 3, Penalty::L2(1e-4), 50, 3);
        assert!(model.predict_proba(&SparseVec::from_pairs([(0, 1.0)])) > 0.8);
        assert!(model.fit_result().is_some());
    }

    #[test]
    fn log_loss_clamps_probabilities() {
        assert!(log_loss(0.0, 1.0).is_finite());
        assert!(log_loss(1.0, 0.0).is_finite());
        assert!(log_loss(0.5, 1.0) > 0.0);
    }
}
