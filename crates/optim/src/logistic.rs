//! Binary and conditional (shared-weight multiclass) logistic regression.
//!
//! SLiMFast's ERM objective is exactly a conditional logistic regression: for every object
//! the candidate classes are the distinct values in its domain, the "feature vector" of a
//! class aggregates the source-indicator and domain features of the sources voting for that
//! value, and all classes share one weight vector (Equation 4 of the paper). EM's M-step is
//! the same model with *fractional* targets given by the E-step posterior. The source
//! accuracy model of Equation 3 is a plain binary logistic regression over source features.

use std::cell::RefCell;

use crate::kernels;
use crate::penalty::Penalty;
use crate::sgd::{minimize, FitResult, SgdConfig, StochasticObjective};
use crate::sparse::SparseVec;

/// Numerically stable logistic function `1 / (1 + e^{-x})`.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `log(1 + e^x)`.
#[inline]
pub fn log1pexp(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Binary cross-entropy `-(y ln p + (1-y) ln(1-p))` with probability clamping.
#[inline]
pub fn log_loss(p: f64, y: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
}

/// In-place stable softmax over a score vector.
pub fn softmax_in_place(scores: &mut [f64]) {
    if scores.is_empty() {
        return;
    }
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    for s in scores.iter_mut() {
        *s /= sum;
    }
}

/// One (possibly fractionally labelled, weighted) binary training example.
#[derive(Debug, Clone)]
pub struct BinaryExample {
    /// Sparse feature vector.
    pub features: SparseVec,
    /// Target in `[0, 1]`; fractional targets express soft labels.
    pub target: f64,
    /// Example weight (1.0 for ordinary examples).
    pub weight: f64,
}

impl BinaryExample {
    /// An example with unit weight.
    pub fn new(features: SparseVec, target: f64) -> Self {
        Self {
            features,
            target,
            weight: 1.0,
        }
    }

    /// An example with an explicit weight.
    pub fn weighted(features: SparseVec, target: f64, weight: f64) -> Self {
        Self {
            features,
            target,
            weight,
        }
    }
}

thread_local! {
    /// Per-lane probability/score scratch reused by the flat objectives across every
    /// example, chunk, and fit on this thread. Taken out of the cell while in use so a
    /// re-entrant call degrades to a fresh allocation instead of a panic.
    static PROB_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Flattens sparse rows into one contiguous CSR block (`offsets` into
/// `params`/`values`), dropping entries at or beyond `num_params` — the dot product
/// treats those as zero and the gradient reducer discards them, so removal at flatten
/// time is semantically neutral and keeps the hot loops branch-light.
fn flatten_rows<'a>(
    rows: impl Iterator<Item = &'a SparseVec>,
    num_params: usize,
) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
    assert!(
        num_params <= u32::MAX as usize,
        "parameter space exceeds the u32 CSR index range"
    );
    let mut offsets: Vec<u32> = vec![0];
    let mut params: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    for row in rows {
        for (i, v) in row.iter() {
            if i < num_params {
                params.push(i as u32);
                values.push(v);
            }
        }
        offsets.push(params.len() as u32);
    }
    (offsets, params, values)
}

/// Binary logistic objective over a flat SoA copy of the examples' features:
/// one contiguous `params`/`values` CSR block replaces per-example `SparseVec`
/// walks, so gradient chunks run over cache-line-friendly columns and batch
/// their sigmoids through [`kernels::sigmoid_slice`].
struct BinaryObjective<'a> {
    examples: &'a [BinaryExample],
    num_params: usize,
    offsets: Vec<u32>,
    params: Vec<u32>,
    values: Vec<f64>,
}

impl<'a> BinaryObjective<'a> {
    fn new(examples: &'a [BinaryExample], num_params: usize) -> Self {
        let (offsets, params, values) =
            flatten_rows(examples.iter().map(|ex| &ex.features), num_params);
        Self {
            examples,
            num_params,
            offsets,
            params,
            values,
        }
    }

    /// The flat feature row of one example.
    #[inline]
    fn row(&self, example: usize) -> (&[u32], &[f64]) {
        let lo = self.offsets[example] as usize;
        let hi = self.offsets[example + 1] as usize;
        (&self.params[lo..hi], &self.values[lo..hi])
    }
}

impl StochasticObjective for BinaryObjective<'_> {
    fn num_params(&self) -> usize {
        self.num_params
    }

    fn num_examples(&self) -> usize {
        self.examples.len()
    }

    fn example_loss_grad(&self, w: &[f64], example: usize, grad: &mut SparseVec) -> f64 {
        let ex = &self.examples[example];
        let (params, values) = self.row(example);
        let mut score = [kernels::dot_csr(params, values, w)];
        kernels::sigmoid_slice(&mut score);
        let p = score[0];
        let err = ex.weight * (p - ex.target);
        for (i, v) in params.iter().zip(values) {
            grad.add(*i as usize, err * v);
        }
        ex.weight * log_loss(p, ex.target)
    }

    fn chunk_loss_grad(
        &self,
        w: &[f64],
        examples: &[usize],
        entries: &mut Vec<(usize, f64)>,
    ) -> f64 {
        let mut probs = PROB_SCRATCH.with(RefCell::take);
        probs.clear();
        for &example in examples {
            let (params, values) = self.row(example);
            probs.push(kernels::dot_csr(params, values, w));
        }
        kernels::sigmoid_slice(&mut probs);
        let mut loss = 0.0;
        for (&example, &p) in examples.iter().zip(probs.iter()) {
            let ex = &self.examples[example];
            let err = ex.weight * (p - ex.target);
            let (params, values) = self.row(example);
            for (i, v) in params.iter().zip(values) {
                entries.push((*i as usize, err * v));
            }
            loss += ex.weight * log_loss(p, ex.target);
        }
        PROB_SCRATCH.with(|cell| cell.replace(probs));
        loss
    }
}

/// A fitted binary logistic regression model.
#[derive(Debug, Clone)]
pub struct BinaryLogisticRegression {
    weights: Vec<f64>,
    fit: Option<FitResult>,
}

impl BinaryLogisticRegression {
    /// Wraps an externally produced weight vector.
    pub fn from_weights(weights: Vec<f64>) -> Self {
        Self { weights, fit: None }
    }

    /// Fits the model on `examples` over a parameter space of dimension `num_params`.
    pub fn fit(examples: &[BinaryExample], num_params: usize, config: &SgdConfig) -> Self {
        Self::fit_warm(examples, num_params, config, None)
    }

    /// Fits with warm-start weights (used by the lasso path and EM).
    pub fn fit_warm(
        examples: &[BinaryExample],
        num_params: usize,
        config: &SgdConfig,
        init: Option<Vec<f64>>,
    ) -> Self {
        let objective = BinaryObjective::new(examples, num_params);
        let fit = minimize(&objective, init, config);
        Self {
            weights: fit.weights.clone(),
            fit: Some(fit),
        }
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Details of the SGD run, when the model was fitted (as opposed to wrapped).
    pub fn fit_result(&self) -> Option<&FitResult> {
        self.fit.as_ref()
    }

    /// Predicted probability of the positive class for a feature vector.
    pub fn predict_proba(&self, features: &SparseVec) -> f64 {
        sigmoid(features.dot(&self.weights))
    }

    /// Mean log-loss over a set of examples.
    pub fn mean_log_loss(&self, examples: &[BinaryExample]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let total: f64 = examples
            .iter()
            .map(|ex| ex.weight * log_loss(self.predict_proba(&ex.features), ex.target))
            .sum();
        total / examples.len() as f64
    }
}

/// The target of a conditional (multiclass) example.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// The index of the correct class.
    Hard(usize),
    /// A distribution over classes (used by EM's M-step with posterior targets).
    Soft(Vec<f64>),
}

/// One conditional logistic-regression example: a set of candidate classes, each with its
/// own sparse feature vector, sharing a single weight vector.
#[derive(Debug, Clone)]
pub struct ConditionalExample {
    /// Per-class sparse feature vectors.
    pub classes: Vec<SparseVec>,
    /// The (hard or soft) target.
    pub target: Target,
    /// Example weight.
    pub weight: f64,
}

impl ConditionalExample {
    /// A hard-labelled example with unit weight.
    pub fn new(classes: Vec<SparseVec>, label: usize) -> Self {
        Self {
            classes,
            target: Target::Hard(label),
            weight: 1.0,
        }
    }

    /// A soft-labelled example with unit weight.
    pub fn soft(classes: Vec<SparseVec>, distribution: Vec<f64>) -> Self {
        Self {
            classes,
            target: Target::Soft(distribution),
            weight: 1.0,
        }
    }

    fn target_prob(&self, class: usize) -> f64 {
        match &self.target {
            Target::Hard(label) => {
                if class == *label {
                    1.0
                } else {
                    0.0
                }
            }
            Target::Soft(dist) => dist.get(class).copied().unwrap_or(0.0),
        }
    }
}

/// Conditional logistic objective over a flat SoA copy of the per-class feature
/// rows: `class_offsets` maps an example to its contiguous class rows, and
/// `row_offsets` maps each class row into the shared `params`/`values` CSR
/// block. Class scores are gathered with [`kernels::dot_csr`] into a
/// thread-local scratch vector (no per-example allocation) and normalised with
/// [`kernels::softmax_row`].
struct ConditionalObjective<'a> {
    examples: &'a [ConditionalExample],
    num_params: usize,
    class_offsets: Vec<u32>,
    row_offsets: Vec<u32>,
    params: Vec<u32>,
    values: Vec<f64>,
}

impl<'a> ConditionalObjective<'a> {
    fn new(examples: &'a [ConditionalExample], num_params: usize) -> Self {
        let (row_offsets, params, values) =
            flatten_rows(examples.iter().flat_map(|ex| ex.classes.iter()), num_params);
        let mut class_offsets: Vec<u32> = Vec::with_capacity(examples.len() + 1);
        class_offsets.push(0);
        let mut rows = 0u32;
        for ex in examples {
            rows += ex.classes.len() as u32;
            class_offsets.push(rows);
        }
        Self {
            examples,
            num_params,
            class_offsets,
            row_offsets,
            params,
            values,
        }
    }

    /// The flat feature row of one class row.
    #[inline]
    fn class_row(&self, row: usize) -> (&[u32], &[f64]) {
        let lo = self.row_offsets[row] as usize;
        let hi = self.row_offsets[row + 1] as usize;
        (&self.params[lo..hi], &self.values[lo..hi])
    }

    /// Shared example body: scores every class row into `probs`, softmaxes, then
    /// reports gradient entries through `emit` and returns the example's loss.
    #[inline]
    fn example_body(
        &self,
        w: &[f64],
        example: usize,
        probs: &mut Vec<f64>,
        mut emit: impl FnMut(usize, f64),
    ) -> f64 {
        let ex = &self.examples[example];
        if ex.classes.is_empty() {
            return 0.0;
        }
        let rows = self.class_offsets[example] as usize..self.class_offsets[example + 1] as usize;
        probs.clear();
        for row in rows.clone() {
            let (params, values) = self.class_row(row);
            probs.push(kernels::dot_csr(params, values, w));
        }
        kernels::softmax_row(probs);
        let mut loss = 0.0;
        for (c, row) in rows.enumerate() {
            let t = ex.target_prob(c);
            let err = ex.weight * (probs[c] - t);
            let (params, values) = self.class_row(row);
            for (i, v) in params.iter().zip(values) {
                emit(*i as usize, err * v);
            }
            if t > 0.0 {
                loss += -t * probs[c].clamp(1e-12, 1.0).ln();
            }
        }
        ex.weight * loss
    }
}

impl StochasticObjective for ConditionalObjective<'_> {
    fn num_params(&self) -> usize {
        self.num_params
    }

    fn num_examples(&self) -> usize {
        self.examples.len()
    }

    fn example_loss_grad(&self, w: &[f64], example: usize, grad: &mut SparseVec) -> f64 {
        let mut probs = PROB_SCRATCH.with(RefCell::take);
        // `SparseVec::add` merges repeated coordinates, which the sequential
        // per-example update path requires.
        let loss = self.example_body(w, example, &mut probs, |i, g| grad.add(i, g));
        PROB_SCRATCH.with(|cell| cell.replace(probs));
        loss
    }

    fn chunk_loss_grad(
        &self,
        w: &[f64],
        examples: &[usize],
        entries: &mut Vec<(usize, f64)>,
    ) -> f64 {
        let mut probs = PROB_SCRATCH.with(RefCell::take);
        let mut loss = 0.0;
        for &example in examples {
            // Raw pushes suffice here: the batch reducer merges duplicate
            // coordinates deterministically in push order.
            loss += self.example_body(w, example, &mut probs, |i, g| entries.push((i, g)));
        }
        PROB_SCRATCH.with(|cell| cell.replace(probs));
        loss
    }
}

/// A fitted conditional logistic regression (multiclass with shared weights).
#[derive(Debug, Clone)]
pub struct ConditionalLogit {
    weights: Vec<f64>,
    fit: Option<FitResult>,
}

impl ConditionalLogit {
    /// Wraps an externally produced weight vector.
    pub fn from_weights(weights: Vec<f64>) -> Self {
        Self { weights, fit: None }
    }

    /// Fits the model.
    pub fn fit(examples: &[ConditionalExample], num_params: usize, config: &SgdConfig) -> Self {
        Self::fit_warm(examples, num_params, config, None)
    }

    /// Fits the model starting from `init` weights.
    pub fn fit_warm(
        examples: &[ConditionalExample],
        num_params: usize,
        config: &SgdConfig,
        init: Option<Vec<f64>>,
    ) -> Self {
        let objective = ConditionalObjective::new(examples, num_params);
        let fit = minimize(&objective, init, config);
        Self {
            weights: fit.weights.clone(),
            fit: Some(fit),
        }
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Details of the SGD run, when fitted.
    pub fn fit_result(&self) -> Option<&FitResult> {
        self.fit.as_ref()
    }

    /// Class posterior for a set of candidate classes, written into a caller-owned
    /// buffer so repeated scoring allocates nothing.
    pub fn predict_proba_into(&self, classes: &[SparseVec], out: &mut Vec<f64>) {
        out.clear();
        out.extend(classes.iter().map(|x| x.dot(&self.weights)));
        softmax_in_place(out);
    }

    /// Class posterior for a set of candidate classes.
    pub fn predict_proba(&self, classes: &[SparseVec]) -> Vec<f64> {
        let mut scores = Vec::with_capacity(classes.len());
        self.predict_proba_into(classes, &mut scores);
        scores
    }

    /// Mean negative log-likelihood over a set of examples. One probability buffer is
    /// reused across the whole set (no per-example allocation).
    pub fn mean_log_loss(&self, examples: &[ConditionalExample]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        let mut probs = Vec::new();
        for ex in examples {
            self.predict_proba_into(&ex.classes, &mut probs);
            for (c, &p) in probs.iter().enumerate() {
                let t = ex.target_prob(c);
                if t > 0.0 {
                    total += -ex.weight * t * p.clamp(1e-12, 1.0).ln();
                }
            }
        }
        total / examples.len() as f64
    }
}

/// Helper fitting a binary logistic regression with the given penalty; used by callers that
/// only need a one-liner (source-quality initialization, the optimizer's diagnostics).
pub fn fit_binary(
    examples: &[BinaryExample],
    num_params: usize,
    penalty: Penalty,
    epochs: usize,
    seed: u64,
) -> BinaryLogisticRegression {
    let config = SgdConfig {
        epochs,
        penalty,
        seed,
        ..SgdConfig::default()
    };
    BinaryLogisticRegression::fit(examples, num_params, &config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(800.0) <= 1.0);
        assert!(sigmoid(-800.0) >= 0.0);
        for x in [-5.0, -1.0, 0.3, 4.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn log1pexp_matches_naive_in_safe_range() {
        for x in [-10.0f64, -1.0, 0.0, 1.0, 10.0] {
            let naive = (1.0f64 + x.exp()).ln();
            assert!((log1pexp(x) - naive).abs() < 1e-9);
        }
        assert!((log1pexp(1000.0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let mut scores = vec![1.0, 3.0, 2.0];
        softmax_in_place(&mut scores);
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(scores[1] > scores[2] && scores[2] > scores[0]);
        // Extreme scores do not overflow.
        let mut extreme = vec![1e4, -1e4];
        softmax_in_place(&mut extreme);
        assert!(extreme[0] > 0.999 && extreme[1] < 1e-3);
    }

    fn separable_examples() -> Vec<BinaryExample> {
        // Positive iff feature 0 is active.
        let mut examples = Vec::new();
        for i in 0..200 {
            let positive = i % 2 == 0;
            let features = if positive {
                SparseVec::from_pairs([(0, 1.0), (1, (i % 3) as f64 * 0.1)])
            } else {
                SparseVec::from_pairs([(1, (i % 3) as f64 * 0.1), (2, 1.0)])
            };
            examples.push(BinaryExample::new(
                features,
                if positive { 1.0 } else { 0.0 },
            ));
        }
        examples
    }

    #[test]
    fn binary_regression_separates_separable_data() {
        let examples = separable_examples();
        let config = SgdConfig {
            epochs: 100,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let model = BinaryLogisticRegression::fit(&examples, 3, &config);
        let pos = model.predict_proba(&SparseVec::from_pairs([(0, 1.0)]));
        let neg = model.predict_proba(&SparseVec::from_pairs([(2, 1.0)]));
        assert!(pos > 0.9, "positive-class probability too low: {pos}");
        assert!(neg < 0.1, "negative-class probability too high: {neg}");
        assert!(model.mean_log_loss(&examples) < 0.2);
    }

    #[test]
    fn fractional_targets_move_probabilities_to_the_target() {
        // A single always-on feature and a fractional target of 0.7: the fitted
        // probability should approach 0.7 (the minimizer of expected log-loss).
        let examples = vec![BinaryExample::new(SparseVec::from_pairs([(0, 1.0)]), 0.7); 100];
        let config = SgdConfig {
            epochs: 300,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let model = BinaryLogisticRegression::fit(&examples, 1, &config);
        let p = model.predict_proba(&SparseVec::from_pairs([(0, 1.0)]));
        assert!((p - 0.7).abs() < 0.03, "p = {p}");
    }

    #[test]
    fn conditional_logit_learns_class_preferences() {
        // Two classes; class feature 0 is the signal for the correct class.
        let mut examples = Vec::new();
        for i in 0..200 {
            let correct_first = i % 2 == 0;
            let strong = SparseVec::from_pairs([(0, 1.0)]);
            let weak = SparseVec::from_pairs([(1, 1.0)]);
            let (classes, label) = if correct_first {
                (vec![strong.clone(), weak.clone()], 0)
            } else {
                (vec![weak.clone(), strong.clone()], 1)
            };
            examples.push(ConditionalExample::new(classes, label));
        }
        let config = SgdConfig {
            epochs: 100,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let model = ConditionalLogit::fit(&examples, 2, &config);
        let probs = model.predict_proba(&[
            SparseVec::from_pairs([(0, 1.0)]),
            SparseVec::from_pairs([(1, 1.0)]),
        ]);
        assert!(probs[0] > 0.9, "probs = {probs:?}");
        assert!(model.mean_log_loss(&examples) < 0.2);
    }

    #[test]
    fn soft_targets_are_respected() {
        // Single example repeated; soft target [0.8, 0.2] with distinct class features.
        let classes = vec![
            SparseVec::from_pairs([(0, 1.0)]),
            SparseVec::from_pairs([(1, 1.0)]),
        ];
        let examples = vec![ConditionalExample::soft(classes.clone(), vec![0.8, 0.2]); 200];
        let config = SgdConfig {
            epochs: 300,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        let model = ConditionalLogit::fit(&examples, 2, &config);
        let probs = model.predict_proba(&classes);
        assert!((probs[0] - 0.8).abs() < 0.05, "probs = {probs:?}");
    }

    #[test]
    fn empty_class_list_contributes_no_loss() {
        let examples = vec![ConditionalExample::new(Vec::new(), 0)];
        let config = SgdConfig {
            epochs: 2,
            ..SgdConfig::default()
        };
        let model = ConditionalLogit::fit(&examples, 3, &config);
        assert_eq!(model.weights().len(), 3);
    }

    #[test]
    fn helper_fit_binary_produces_a_model() {
        let examples = separable_examples();
        let model = fit_binary(&examples, 3, Penalty::L2(1e-4), 50, 3);
        assert!(model.predict_proba(&SparseVec::from_pairs([(0, 1.0)])) > 0.8);
        assert!(model.fit_result().is_some());
    }

    #[test]
    fn log_loss_clamps_probabilities() {
        assert!(log_loss(0.0, 1.0).is_finite());
        assert!(log_loss(1.0, 0.0).is_finite());
        assert!(log_loss(0.5, 1.0) > 0.0);
    }
}
