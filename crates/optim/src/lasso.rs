//! The lasso path: how L1-regularized model weights evolve as the penalty is relaxed.
//!
//! Section 5.3.1 of the paper couples SLiMFast with the lasso path to explain *which*
//! domain features drive source accuracy: important features activate (become non-zero)
//! at high penalties and keep growing as the penalty decreases (Figures 6 and 9).

use crate::logistic::{BinaryExample, BinaryLogisticRegression};
use crate::penalty::Penalty;
use crate::sgd::SgdConfig;

/// The result of a lasso-path sweep: one fitted weight vector per penalty value.
#[derive(Debug, Clone)]
pub struct LassoPath {
    /// The L1 strengths of the sweep, in the order they were fitted (strongest first).
    pub lambdas: Vec<f64>,
    /// `weights[i][k]` is the weight of parameter `k` at penalty `lambdas[i]`.
    pub weights: Vec<Vec<f64>>,
}

impl LassoPath {
    /// Number of parameters tracked by the path.
    pub fn num_params(&self) -> usize {
        self.weights.first().map(Vec::len).unwrap_or(0)
    }

    /// The trajectory of one parameter across the sweep (strongest penalty first).
    pub fn trajectory(&self, param: usize) -> Vec<f64> {
        self.weights
            .iter()
            .map(|w| w.get(param).copied().unwrap_or(0.0))
            .collect()
    }

    /// The normalized x-axis used in the paper's plots: `μ ∈ [0, 1]`, the L1 norm of the
    /// solution at each penalty divided by the maximum L1 norm along the path.
    pub fn normalized_l1(&self) -> Vec<f64> {
        let norms: Vec<f64> = self
            .weights
            .iter()
            .map(|w| w.iter().map(|x| x.abs()).sum())
            .collect();
        let max = norms.iter().copied().fold(0.0f64, f64::max);
        if max == 0.0 {
            return vec![0.0; norms.len()];
        }
        norms.into_iter().map(|n| n / max).collect()
    }

    /// For each parameter, the position along the path (index into `lambdas`) at which it
    /// first takes a non-zero weight; `None` if it never activates. Parameters that
    /// activate earlier (at stronger penalties) are more important.
    pub fn activation_index(&self, threshold: f64) -> Vec<Option<usize>> {
        let n = self.num_params();
        (0..n)
            .map(|k| self.weights.iter().position(|w| w[k].abs() > threshold))
            .collect()
    }

    /// Parameters ranked by importance: earliest activation first, ties broken by the
    /// magnitude of the final (least-penalized) weight. Never-active parameters come last.
    pub fn importance_ranking(&self, threshold: f64) -> Vec<usize> {
        let activations = self.activation_index(threshold);
        let final_weights = self.weights.last().cloned().unwrap_or_default();
        let mut order: Vec<usize> = (0..self.num_params()).collect();
        order.sort_by(|&a, &b| {
            let key_a = activations[a].unwrap_or(usize::MAX);
            let key_b = activations[b].unwrap_or(usize::MAX);
            key_a.cmp(&key_b).then(
                final_weights[b]
                    .abs()
                    .partial_cmp(&final_weights[a].abs())
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        order
    }
}

/// Sweeps the L1 penalty over `lambdas` (fitted strongest-first with warm starts) and
/// records the weight vector at each strength.
///
/// `base` controls everything except the penalty; its `penalty` field is overridden.
pub fn lasso_path(
    examples: &[BinaryExample],
    num_params: usize,
    lambdas: &[f64],
    base: &SgdConfig,
) -> LassoPath {
    let mut sorted: Vec<f64> = lambdas.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut weights = Vec::with_capacity(sorted.len());
    let mut warm: Option<Vec<f64>> = None;
    for &lambda in &sorted {
        let config = SgdConfig {
            penalty: Penalty::L1(lambda),
            ..*base
        };
        let model = BinaryLogisticRegression::fit_warm(examples, num_params, &config, warm.clone());
        warm = Some(model.weights().to_vec());
        weights.push(model.weights().to_vec());
    }
    LassoPath {
        lambdas: sorted,
        weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseVec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Data where feature 0 strongly predicts the label, feature 1 weakly, feature 2 not
    /// at all.
    fn examples() -> Vec<BinaryExample> {
        let mut rng = StdRng::seed_from_u64(17);
        (0..400)
            .map(|_| {
                let y = rng.gen_bool(0.5);
                let strong = if y { 1.0 } else { 0.0 };
                let weak = if rng.gen_bool(if y { 0.65 } else { 0.35 }) {
                    1.0
                } else {
                    0.0
                };
                let noise = if rng.gen_bool(0.5) { 1.0 } else { 0.0 };
                BinaryExample::new(
                    SparseVec::from_pairs([(0, strong), (1, weak), (2, noise)]),
                    if y { 1.0 } else { 0.0 },
                )
            })
            .collect()
    }

    fn path() -> LassoPath {
        let base = SgdConfig {
            epochs: 60,
            tolerance: 0.0,
            ..SgdConfig::default()
        };
        lasso_path(&examples(), 3, &[0.5, 0.1, 0.02, 0.004, 0.0008, 0.0], &base)
    }

    #[test]
    fn lambdas_are_sorted_descending() {
        let p = path();
        for pair in p.lambdas.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        assert_eq!(p.weights.len(), p.lambdas.len());
        assert_eq!(p.num_params(), 3);
    }

    #[test]
    fn informative_features_activate_before_noise() {
        let p = path();
        let ranking = p.importance_ranking(1e-3);
        assert_eq!(
            ranking[0], 0,
            "the strong feature should be most important: {ranking:?}"
        );
        let activations = p.activation_index(1e-3);
        // The strong feature activates no later than the noise feature.
        match (activations[0], activations[2]) {
            (Some(a0), Some(a2)) => assert!(a0 <= a2),
            (Some(_), None) => {}
            other => panic!("unexpected activations {other:?}"),
        }
    }

    #[test]
    fn normalized_l1_is_monotone_in_zero_to_one() {
        let p = path();
        let mu = p.normalized_l1();
        assert_eq!(mu.len(), p.lambdas.len());
        for &m in &mu {
            assert!((0.0..=1.0 + 1e-12).contains(&m));
        }
        // The least-penalized solution attains the maximum norm.
        assert!((mu.last().copied().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trajectory_has_one_point_per_lambda() {
        let p = path();
        assert_eq!(p.trajectory(0).len(), p.lambdas.len());
        // The strong feature's final weight should be clearly positive.
        assert!(p.trajectory(0).last().copied().unwrap() > 0.5);
    }

    #[test]
    fn empty_path_is_well_formed() {
        let p = LassoPath {
            lambdas: Vec::new(),
            weights: Vec::new(),
        };
        assert_eq!(p.num_params(), 0);
        assert!(p.normalized_l1().is_empty());
        assert!(p.importance_ranking(1e-3).is_empty());
    }
}
