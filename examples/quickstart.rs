//! Quickstart: the running example of the paper (Figure 1) — three scientific articles
//! make conflicting claims about gene–disease associations, we know one ground-truth fact,
//! and SLiMFast resolves the conflict while estimating each article's accuracy.
//!
//! Run with: `cargo run --example quickstart`

use slimfast::prelude::*;

fn main() {
    // --- Source observations (the extracted (gene, disease, associated) triples). -------
    let mut builder = DatasetBuilder::new();
    builder
        .observe("article-1", "GIGYF2/Parkinson", "false")
        .unwrap();
    builder
        .observe("article-2", "GIGYF2/Parkinson", "false")
        .unwrap();
    builder
        .observe("article-3", "GIGYF2/Parkinson", "true")
        .unwrap();
    builder
        .observe("article-1", "GBA/Parkinson", "true")
        .unwrap();
    builder
        .observe("article-3", "GBA/Parkinson", "true")
        .unwrap();
    builder
        .observe("article-2", "GBA/Parkinson", "false")
        .unwrap();
    let dataset = builder.build();

    // --- Limited ground truth: GBA is truly associated with Parkinson's disease. --------
    let mut truth = GroundTruth::empty(dataset.num_objects());
    truth.set(
        dataset.object_id("GBA/Parkinson").unwrap(),
        dataset.value_id("true").unwrap(),
    );

    // --- Domain knowledge about the articles (Section 3.1). -----------------------------
    let mut features = FeatureMatrixBuilder::new();
    let a1 = dataset.source_id("article-1").unwrap();
    let a2 = dataset.source_id("article-2").unwrap();
    let a3 = dataset.source_id("article-3").unwrap();
    features.set_flag(a1, "Citations=High");
    features.set_flag(a1, "Study=KnockOut");
    features.set_flag(a2, "Citations=Low");
    features.set_flag(a2, "Study=GWAS");
    features.set_flag(a3, "Citations=High");
    features.set_flag(a3, "Study=KnockOut");
    let features = features.build(dataset.num_sources());

    // --- Data fusion with SLiMFast: fit once, then predict. ------------------------------
    let method = SlimFast::new(SlimFastConfig::default());
    let input = FusionInput::new(&dataset, &features, &truth);
    let report = method.plan(&input);
    println!(
        "Optimizer decision: {:?} ({} labelled objects, ERM bound {:.2})",
        report.decision, report.num_labeled, report.erm_bound
    );

    let fitted = method.fit(&input);
    let assignment = fitted.predict(&dataset, &features);
    println!("\nResolved object values:");
    for o in dataset.object_ids() {
        let value = assignment.get(o).unwrap();
        println!(
            "  {:<20} -> {:<6} (confidence {:.2})",
            dataset.object_name(o).unwrap(),
            dataset.value_name(value).unwrap(),
            assignment.confidence(o)
        );
    }

    println!("\nEstimated source accuracies:");
    let accuracies = fitted.source_accuracies().unwrap();
    for s in dataset.source_ids() {
        println!(
            "  {:<12} A = {:.2}",
            dataset.source_name(s).unwrap(),
            accuracies.get(s)
        );
    }

    // --- The fitted model keeps serving as new claims stream in. -------------------------
    let mut delta = dataset.to_builder();
    delta
        .observe("article-4", "GIGYF2/Parkinson", "false")
        .unwrap();
    let grown = delta.build();
    let gigyf2 = grown.object_id("GIGYF2/Parkinson").unwrap();
    let posterior = fitted.posterior(&grown, &features, gigyf2);
    println!(
        "\nAfter a new article weighs in (no retraining), P(GIGYF2/Parkinson) over {:?} = {:?}",
        grown
            .domain(gigyf2)
            .iter()
            .map(|&v| grown.value_name(v).unwrap())
            .collect::<Vec<_>>(),
        posterior
            .iter()
            .map(|p| format!("{p:.2}"))
            .collect::<Vec<_>>()
    );
}
