//! Web-source reliability: fuse stock-volume reports from dense, mostly unreliable web
//! sources, detect copying news domains on a second instance, and estimate the accuracy of
//! sources we have never observed (source-quality initialization, Section 5.3.2).
//!
//! Run with: `cargo run --release --example web_source_reliability`

use slimfast::core::copying::{add_copy_features, detect_copy_candidates};
use slimfast::core::erm::train_erm;
use slimfast::core::source_init::{predict_unseen_accuracies, unseen_accuracy_error};
use slimfast::prelude::*;

fn main() {
    // --- Part 1: dense, low-accuracy stock sources. -------------------------------------
    let stocks = DatasetKind::Stocks.generate(3);
    let split = SplitPlan::new(0.05, 1).draw(&stocks.truth, 0).unwrap();
    let train = split.train_truth(&stocks.truth);
    let config = SlimFastConfig::default();
    let output = SlimFast::new(config.clone()).fuse(&FusionInput::new(
        &stocks.dataset,
        &stocks.features,
        &train,
    ));
    println!(
        "Stocks: held-out accuracy {:.3} with 5% training data ({} sources, avg source accuracy {:.2})",
        output.assignment.accuracy_against(&stocks.truth, &split.test),
        stocks.dataset.num_sources(),
        stocks.mean_true_accuracy(),
    );

    // --- Part 2: copying news domains (Appendix D). -------------------------------------
    let demos = DatasetKind::Demonstrations.generate(3);
    let candidates = detect_copy_candidates(&demos.dataset, 8, 0.85);
    println!(
        "\nDemonstrations: {} candidate copier pairs detected (planted: {})",
        candidates.len(),
        demos.copier_pairs.len()
    );
    let no_features = FeatureMatrix::empty(demos.dataset.num_sources());
    let (copy_features, _) = add_copy_features(&demos.dataset, &no_features, &candidates);
    let split = SplitPlan::new(0.05, 1).draw(&demos.truth, 0).unwrap();
    let train = split.train_truth(&demos.truth);
    let plain = SlimFast::em(config.clone())
        .fuse(&FusionInput::new(&demos.dataset, &no_features, &train))
        .assignment
        .accuracy_against(&demos.truth, &split.test);
    let with_copy = SlimFast::em(config.clone())
        .fuse(&FusionInput::new(&demos.dataset, &copy_features, &train))
        .assignment
        .accuracy_against(&demos.truth, &split.test);
    println!("  accuracy without copy features: {plain:.3}");
    println!("  accuracy with    copy features: {with_copy:.3}");

    // --- Part 3: source-quality initialization for unseen sources. ----------------------
    let crowd = DatasetKind::Crowd.generate(3);
    let num_sources = crowd.dataset.num_sources();
    let cutoff = num_sources / 2;
    let seen: Vec<SourceId> = (0..cutoff).map(SourceId::new).collect();
    let unseen: Vec<SourceId> = (cutoff..num_sources).map(SourceId::new).collect();
    let (train_dataset, kept) = crowd.dataset.restrict_sources(&seen);
    let train_features = crowd.features.restrict_sources(&kept);
    let label_split = SplitPlan::new(0.5, 2).draw(&crowd.truth, 0).unwrap();
    let model = train_erm(
        &train_dataset,
        &train_features,
        &label_split.train_truth(&crowd.truth),
        &config,
    );
    let predicted = predict_unseen_accuracies(&model, &crowd.features, &unseen);
    let actual: Vec<f64> = unseen
        .iter()
        .map(|s| crowd.true_accuracies[s.index()])
        .collect();
    println!(
        "\nCrowd: predicted the accuracy of {} never-before-seen workers from their features \
         with mean absolute error {:.3}",
        unseen.len(),
        unseen_accuracy_error(&predicted, &actual)
    );
}
