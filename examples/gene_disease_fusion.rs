//! Gene–disease association fusion at the scale of the paper's Genomics dataset: 2,750
//! extremely sparse article-sources, where per-source signal is nearly useless and the
//! publication-metadata features carry the weight. Compares SLiMFast (with features)
//! against the feature-free discriminative model and majority vote.
//!
//! Run with: `cargo run --release --example gene_disease_fusion`

use slimfast::prelude::*;

fn main() {
    let instance = DatasetKind::Genomics.generate(7);
    let stats = DatasetStats::compute(&instance.dataset, &instance.features, &instance.truth);
    println!(
        "Genomics-style instance: {} sources, {} objects, {} observations (avg {:.2} per source)",
        stats.num_sources,
        stats.num_objects,
        stats.num_observations,
        stats.avg_observations_per_source
    );

    // Reveal 10% of the labels for training; evaluate on the rest.
    let split = SplitPlan::new(0.10, 1).draw(&instance.truth, 0).unwrap();
    let train = split.train_truth(&instance.truth);
    let no_features = FeatureMatrix::empty(instance.dataset.num_sources());
    let config = SlimFastConfig::default();

    let contenders: Vec<(&str, FusionOutput)> = vec![
        (
            "SLiMFast (features)",
            SlimFast::new(config.clone()).fuse(&FusionInput::new(
                &instance.dataset,
                &instance.features,
                &train,
            )),
        ),
        (
            "Sources-only (no features)",
            SlimFast::new(config.clone()).fuse(&FusionInput::new(
                &instance.dataset,
                &no_features,
                &train,
            )),
        ),
        (
            "MajorityVote",
            MajorityVote.fuse(&FusionInput::new(&instance.dataset, &no_features, &train)),
        ),
    ];

    println!(
        "\nHeld-out accuracy for true object values ({} test objects):",
        split.test.len()
    );
    for (name, output) in &contenders {
        let accuracy = output
            .assignment
            .accuracy_against(&instance.truth, &split.test);
        println!("  {name:<30} {accuracy:.3}");
    }

    // Which publication-metadata features did SLiMFast find informative?
    let (model, decision) = SlimFast::new(config).train(&FusionInput::new(
        &instance.dataset,
        &instance.features,
        &train,
    ));
    println!("\nLearning algorithm chosen by the optimizer: {decision:?}");
    let mut weighted: Vec<(String, f64)> = instance
        .features
        .feature_names()
        .map(|(k, name)| (name.to_string(), model.feature_weights()[k.index()]))
        .collect();
    weighted.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
    println!("Most informative source features:");
    for (name, weight) in weighted.into_iter().take(8) {
        println!("  {name:<24} w = {weight:+.3}");
    }
}
