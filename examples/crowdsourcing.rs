//! Crowdsourced label aggregation: 102 workers judge the sentiment of ~1,000 tweets
//! (exactly 20 judgements per tweet). Shows the full method line-up of the paper, the
//! optimizer's ERM/EM crossover as ground truth grows, and which worker features predict
//! worker accuracy.
//!
//! Run with: `cargo run --release --example crowdsourcing`

use slimfast::core::explain::{default_lambda_grid, feature_lasso_path};
use slimfast::eval::runner::run_grid;
use slimfast::eval::tables::format_accuracy_table;
use slimfast::prelude::*;

fn main() {
    let instance = DatasetKind::Crowd.generate(11);
    println!(
        "Crowd-style instance: {} workers, {} tweets, {} judgements",
        instance.dataset.num_sources(),
        instance.dataset.num_objects(),
        instance.dataset.num_observations()
    );

    // Compare the paper's method line-up across training fractions (reduced protocol so the
    // example finishes quickly).
    let config = SlimFastConfig {
        erm_epochs: 40,
        ..Default::default()
    };
    let protocol = ExperimentProtocol {
        train_fractions: vec![0.001, 0.01, 0.10],
        repetitions: 2,
        seed: 7,
    };
    let lineup = standard_lineup(&config);
    let summaries = run_grid(&instance, &lineup, &protocol);
    println!("\n{}", format_accuracy_table("Crowd", &summaries));

    // Optimizer behaviour: at tiny amounts of ground truth EM wins (redundancy of 20
    // workers per tweet); once enough labels are available it switches to ERM.
    println!("Optimizer decisions as ground truth grows:");
    for fraction in [0.001, 0.01, 0.05, 0.20] {
        let split = SplitPlan::new(fraction, 3)
            .draw(&instance.truth, 0)
            .unwrap();
        let train = split.train_truth(&instance.truth);
        let report = SlimFast::new(config.clone()).plan(&FusionInput::new(
            &instance.dataset,
            &instance.features,
            &train,
        ));
        println!(
            "  {:>5.1}% labels -> {:?} (ERM units {:.1}, EM units {:.1})",
            fraction * 100.0,
            report.decision,
            report.erm_units,
            report.em_units
        );
    }

    // Which worker attributes predict accuracy? (Figure 9's analysis.)
    let path = feature_lasso_path(
        &instance.dataset,
        &instance.features,
        &instance.truth,
        &default_lambda_grid(),
        40,
        1,
    );
    println!("\nWorker features most predictive of answer accuracy:");
    for (name, trajectory) in path.ranked_features().into_iter().take(6) {
        println!(
            "  {name:<24} final weight {:+.2}",
            trajectory.last().copied().unwrap_or(0.0)
        );
    }
}
