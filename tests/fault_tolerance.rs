//! Chaos suite: proves the serving tier survives injected refit failures, torn
//! snapshot writes, and corrupt generations while posteriors stay available and
//! bitwise-deterministic.
//!
//! The whole file is gated on the `fault-injection` feature (the CI `chaos` job runs
//! it with `--features fault-injection` at `SLIMFAST_THREADS={1,4}`); in a default
//! build it compiles to an empty test binary, so the production no-op path is what
//! tier-1 CI measures. Every test activates a [`FaultPlan`] scope — even the ones
//! that schedule no triggers — because the active plan is process-global and the
//! scope's exclusivity lock is what keeps concurrently scheduled tests from hitting
//! each other's counters.
#![cfg(feature = "fault-injection")]

use std::panic::AssertUnwindSafe;
use std::path::PathBuf;

use slimfast::data::faults::{FaultKind, FaultPlan};
use slimfast::data::{atomic_write, DataError};
use slimfast::prelude::*;

/// Deterministic, conflict-free claim stream: each global index yields one claim by a
/// fixed source about its own fresh object, so every claim appends and re-runs are
/// bitwise-reproducible.
fn fresh_claims(start: usize, n: usize) -> Vec<NamedObservation> {
    (start..start + n)
        .map(|i| {
            let value = if (i * 2654435761) % 5 < 3 { "v0" } else { "v1" };
            NamedObservation::new(format!("s{}", i % 17), format!("fresh-o{i}"), value)
        })
        .collect()
}

/// A fitted engine over a base instance whose objects (`o*`) are disjoint from the
/// `fresh-o*` live stream, so base posteriors only move when a refit installs.
fn fitted_engine(threads: usize, policy: RefitPolicy) -> FusionEngine {
    let mut builder = DatasetBuilder::new();
    for i in 0..400usize {
        let (s, o) = (i % 17, i % 113);
        let value = if (s * 31 + o * 7) % 3 == 0 {
            "v0"
        } else {
            "v1"
        };
        let _ = builder.observe(&format!("s{s}"), &format!("o{o}"), value);
    }
    let dataset = builder.build();
    let features = FeatureMatrix::empty(dataset.num_sources());
    let mut truth = GroundTruth::empty(dataset.num_objects());
    for i in (0..dataset.num_objects()).step_by(9) {
        let o = ObjectId::new(i);
        if let Some(&v) = dataset.domain(o).first() {
            truth.set(o, v);
        }
    }
    FusionEngine::fit(
        SlimFast::em(SlimFastConfig::default().with_threads(threads)),
        dataset,
        features,
        truth,
        policy,
    )
}

/// Bit patterns of a posterior, for bitwise comparisons across configurations.
fn bits(posterior: &[f64]) -> Vec<u64> {
    posterior.iter().map(|p| p.to_bits()).collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "slimfast-fault-tolerance-{}-{tag}",
        std::process::id()
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("reset scratch dir");
    }
    dir
}

/// Drives one engine through three injected refit failures (panic, error, panic) and
/// returns the base-object posterior bits observed after quarantine plus the final
/// posterior bits after a manual recovery refit.
fn refit_failure_scenario(threads: usize) -> (Vec<u64>, Vec<u64>) {
    let _scope = FaultPlan::new(threads as u64)
        .fault("refit.train", 1, FaultKind::Panic)
        .fault("refit.train", 2, FaultKind::Error)
        .fault("refit.train", 3, FaultKind::Panic)
        .activate();

    let mut serving = ServingEngine::new(fitted_engine(threads, RefitPolicy::EveryNClaims(32)))
        .with_retry_policy(RetryPolicy::new(3, 64));
    let mut reader = serving.reader();
    let baseline = bits(&reader.posterior("o0").expect("base object is served"));

    // Ingest 16 fresh claims per round, draining each round so any dispatched refit
    // resolves deterministically before the next gating decision.
    let mut ingested = 0usize;
    let mut round = 0usize;
    while serving.stats().refit_failures < 3 {
        serving.ingest(&fresh_claims(ingested, 16)).unwrap();
        ingested += 16;
        serving.drain();
        round += 1;
        assert!(round < 64, "supervision never reached quarantine");
    }

    // Three consecutive failures exhausted RetryPolicy::new(3, _): quarantined, with
    // the failure trail on the health report and the current snapshot untouched.
    let health = serving.health();
    assert_eq!(health.state, HealthState::Quarantined);
    assert_eq!(health.consecutive_refit_failures, 3);
    assert_eq!(health.refit_failures, 3);
    assert_eq!(health.refit_retries, 2, "attempts 2 and 3 were retries");
    assert_eq!(health.next_retry_at_claims, None);
    let last = health.last_refit_error.expect("failure message recorded");
    assert!(last.contains("injected"), "unexpected error: {last}");
    assert_eq!(serving.stats().health, HealthState::Quarantined);
    assert_eq!(serving.engine().refit_count(), 0, "nothing installed");

    // While quarantined, automatic dispatch is suspended no matter how many claims
    // arrive — and queries keep serving the pre-refit model bitwise-unchanged.
    for _ in 0..4 {
        serving.ingest(&fresh_claims(ingested, 16)).unwrap();
        ingested += 16;
        serving.drain();
    }
    assert_eq!(
        serving.stats().refit_failures,
        3,
        "no dispatch in quarantine"
    );
    assert!(!serving.stats().refit_in_flight);
    let quarantined = bits(&reader.posterior("o0").expect("still served"));
    assert_eq!(
        quarantined, baseline,
        "failed refits must not move posteriors"
    );

    // A manual dispatch is honored even in quarantine; with the plan's triggers
    // consumed it succeeds and supervision returns to healthy.
    assert!(serving.refit_background());
    assert!(serving.drain(), "manual retry installs");
    assert_eq!(serving.health().state, HealthState::Healthy);
    assert_eq!(serving.health().consecutive_refit_failures, 0);
    assert_eq!(
        serving.health().refit_failures,
        3,
        "lifetime total preserved"
    );
    assert_eq!(serving.engine().refit_count(), 1);
    let recovered = bits(&reader.posterior("o0").expect("served after recovery"));
    (quarantined, recovered)
}

#[test]
fn failed_refits_degrade_then_quarantine_while_serving_stays_bitwise_stable() {
    let single = refit_failure_scenario(1);
    let multi = refit_failure_scenario(4);
    assert_eq!(single, multi, "scenario must be bitwise thread-invariant");
}

#[test]
fn degraded_engine_backs_off_by_claim_count_before_retrying() {
    let _scope = FaultPlan::new(9)
        .fault("refit.train", 1, FaultKind::Error)
        .activate();
    let mut serving = ServingEngine::new(fitted_engine(1, RefitPolicy::EveryNClaims(32)))
        .with_retry_policy(RetryPolicy::new(3, 64));

    // Walk to the first failure.
    let mut ingested = 0usize;
    while serving.stats().refit_failures < 1 {
        serving.ingest(&fresh_claims(ingested, 16)).unwrap();
        ingested += 16;
        serving.drain();
    }
    let health = serving.health();
    assert_eq!(health.state, HealthState::Degraded);
    let retry_at = health.next_retry_at_claims.expect("backoff scheduled");
    assert_eq!(retry_at, serving.stats().claims_ingested + 64);

    // Below the backoff threshold the policy keeps firing but supervision holds the
    // dispatch back; crossing it releases the retry, which succeeds (trigger spent).
    while serving.stats().claims_ingested < retry_at {
        serving.ingest(&fresh_claims(ingested, 16)).unwrap();
        ingested += 16;
        assert!(
            serving.stats().claims_ingested >= retry_at || !serving.stats().refit_in_flight,
            "dispatched before the claim-count backoff elapsed"
        );
        serving.drain();
    }
    assert_eq!(serving.stats().refit_retries, 1);
    assert_eq!(serving.health().state, HealthState::Healthy);
    assert_eq!(serving.engine().refit_count(), 1);
}

#[test]
fn recovery_cold_starts_from_the_prior_generation_when_the_newest_is_truncated() {
    for threads in [1usize, 4] {
        let _scope = FaultPlan::new(0).activate(); // exclusivity only; no triggers
        let dir = SnapshotDir::open(scratch_dir(&format!("truncated-{threads}")))
            .unwrap()
            .with_retention(3);

        let mut serving = ServingEngine::new(fitted_engine(threads, RefitPolicy::Never));
        assert_eq!(serving.checkpoint(&dir).unwrap(), 1);
        let golden: Vec<Vec<u64>> = (0..8)
            .map(|i| bits(&serving.snapshot().posterior(&format!("o{i}")).unwrap()))
            .collect();

        // A newer generation lands, then a torn write truncates it mid-file.
        serving.ingest(&fresh_claims(0, 40)).unwrap();
        serving.publish_now();
        assert_eq!(serving.checkpoint(&dir).unwrap(), 2);
        let newest = dir.generation_path(2);
        let full = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &full[..full.len() / 2]).unwrap();

        let report = dir.recover(ModelSnapshot::from_bytes).unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].0, 2);

        let recovered = ServingEngine::recover(
            &dir,
            SlimFast::em(SlimFastConfig::default().with_threads(threads)),
            RefitPolicy::Never,
        )
        .unwrap();
        for (i, expected) in golden.iter().enumerate() {
            let served = bits(&recovered.snapshot().posterior(&format!("o{i}")).unwrap());
            assert_eq!(&served, expected, "object o{i} diverged after recovery");
        }
        assert_eq!(recovered.health().state, HealthState::Healthy);
        std::fs::remove_dir_all(dir.path()).ok();
    }
}

#[test]
fn recovery_scans_past_injected_read_faults() {
    let dir_path = scratch_dir("read-fault");
    {
        let _scope = FaultPlan::new(0).activate();
        let dir = SnapshotDir::open(&dir_path).unwrap();
        let serving = ServingEngine::new(fitted_engine(1, RefitPolicy::Never));
        assert_eq!(serving.checkpoint(&dir).unwrap(), 1);
        assert_eq!(serving.checkpoint(&dir).unwrap(), 2);
    }
    // The newest generation's *read* fails (flaky disk, not a torn write): recovery
    // reports it as skipped with the injected reason and falls back a generation.
    let _scope = FaultPlan::new(0)
        .fault("snapshot.read", 1, FaultKind::Error)
        .activate();
    let dir = SnapshotDir::open(&dir_path).unwrap();
    let report = dir.recover(ModelSnapshot::from_bytes).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.skipped.len(), 1);
    assert!(report.skipped[0]
        .1
        .contains("injected fault at snapshot.read"));
    std::fs::remove_dir_all(&dir_path).ok();
}

#[test]
fn injected_csv_read_faults_abort_both_ingest_modes_as_io_errors() {
    use slimfast::data::{read_observations_csv, read_observations_csv_lenient};
    let csv = "s0,o0,v0\ns1,o0,v0\ns0,o1,v1\n";

    let _scope = FaultPlan::new(0)
        .fault("csv.read", 2, FaultKind::Error)
        .activate();
    let err = read_observations_csv(csv.as_bytes()).unwrap_err();
    assert!(matches!(err, DataError::Io(ref m) if m.contains("injected")));

    // Lenient mode quarantines *bad rows*, not failing media: the same injected I/O
    // fault aborts the load rather than being silently skipped. (Fresh scope, since
    // dropping the first one resets the site's hit counter.)
    drop(_scope);
    let _scope = FaultPlan::new(0)
        .fault("csv.read", 2, FaultKind::Error)
        .activate();
    let err = read_observations_csv_lenient(csv.as_bytes(), 8).unwrap_err();
    assert!(matches!(err, DataError::Io(ref m) if m.contains("injected")));
}

/// Property: `atomic_write` is all-or-nothing under a fault at *every* injected site
/// and for both fault kinds. The destination afterwards holds exactly the old bytes
/// (never a prefix, suffix, or splice of the new ones), and a clean retry lands the
/// new bytes intact.
#[test]
fn atomic_write_leaves_old_or_new_bytes_never_a_mix() {
    let base = scratch_dir("atomic");
    std::fs::create_dir_all(&base).unwrap();
    let mut case = 0usize;
    for seed in 0..6u64 {
        for site in ["atomic_write.pre_fsync", "atomic_write.pre_rename"] {
            for kind in [FaultKind::Error, FaultKind::Panic] {
                let plan = FaultPlan::new(seed);
                // Deterministically seed-varied payloads, sized around the derived
                // position so contents differ in length and bytes across cases.
                let old: Vec<u8> = (0..plan.derive_nth(site, 64) + 3)
                    .map(|i| (seed as u8).wrapping_mul(31).wrapping_add(i as u8))
                    .collect();
                let new: Vec<u8> = (0..plan.derive_nth("new", 96) + 5)
                    .map(|i| (seed as u8).wrapping_mul(17).wrapping_add(171 ^ i as u8))
                    .collect();
                let path = base.join(format!("case-{case}.bin"));
                case += 1;
                std::fs::write(&path, &old).unwrap();

                {
                    let _scope = plan.clone().fault(site, 1, kind).activate();
                    let attempt =
                        std::panic::catch_unwind(AssertUnwindSafe(|| atomic_write(&path, &new)));
                    match (kind, attempt) {
                        (FaultKind::Error, Ok(result)) => {
                            let err = result.expect_err("injected error must surface");
                            assert!(matches!(err, DataError::Io(ref m) if m.contains(site)));
                        }
                        (FaultKind::Panic, Err(_)) => {}
                        (k, outcome) => panic!(
                            "fault {k:?} at {site} resolved unexpectedly (panicked: {})",
                            outcome.is_err()
                        ),
                    }
                }
                assert_eq!(
                    std::fs::read(&path).unwrap(),
                    old,
                    "destination changed despite failed write ({site}, {kind:?})"
                );

                // With the plan cleared the same write commits the new bytes whole.
                atomic_write(&path, &new).unwrap();
                assert_eq!(std::fs::read(&path).unwrap(), new);
            }
        }
    }
    std::fs::remove_dir_all(&base).ok();
}
