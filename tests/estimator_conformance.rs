//! Trait-conformance suite for the fit→predict contract: every estimator in the
//! workspace runs through `fit`/`predict` on one shared synthetic instance, and the
//! one-shot `fuse` shim must agree with the two-phase path exactly — including across
//! repeated fits (determinism) and on datasets that grew by a delta after fitting.

use slimfast::datagen::{AccuracyModel, FeatureModel, ObservationPattern};
use slimfast::prelude::*;

/// Every estimator of the workspace, under a config small enough for tests.
fn all_estimators() -> Vec<Box<dyn FusionEstimator>> {
    let config = SlimFastConfig {
        erm_epochs: 25,
        ..Default::default()
    };
    vec![
        Box::new(SlimFast::new(config.clone())),
        Box::new(SlimFast::erm(config.clone())),
        Box::new(SlimFast::em(config)),
        Box::new(MajorityVote),
        Box::new(Counts::default()),
        Box::new(Accu::default()),
        Box::new(Catd::default()),
        Box::new(Sstf::default()),
        Box::new(TruthFinder::default()),
    ]
}

fn shared_instance() -> SyntheticInstance {
    SyntheticConfig {
        name: "conformance".into(),
        num_sources: 50,
        num_objects: 180,
        domain_size: 3,
        pattern: ObservationPattern::PerObjectExact(7),
        accuracy: AccuracyModel {
            mean: 0.72,
            spread: 0.12,
        },
        features: FeatureModel {
            num_predictive: 2,
            num_noise: 2,
            predictive_strength: 0.25,
        },
        copying: None,
        seed: 23,
    }
    .generate()
}

fn assert_assignments_identical(a: &TruthAssignment, b: &TruthAssignment, who: &str, ctx: &str) {
    assert_eq!(a.num_objects(), b.num_objects(), "{who}: {ctx}: coverage");
    for o in 0..a.num_objects() {
        let o = ObjectId::new(o);
        assert_eq!(a.get(o), b.get(o), "{who}: {ctx}: value for {o:?}");
        assert!(
            a.confidence(o) == b.confidence(o),
            "{who}: {ctx}: confidence for {o:?} ({} vs {})",
            a.confidence(o),
            b.confidence(o)
        );
    }
}

#[test]
fn fuse_equals_fit_plus_predict_for_every_estimator() {
    let inst = shared_instance();
    let split = SplitPlan::new(0.15, 9).draw(&inst.truth, 0).unwrap();
    let train = split.train_truth(&inst.truth);
    let input = FusionInput::new(&inst.dataset, &inst.features, &train);

    for estimator in all_estimators() {
        let who = FusionEstimator::name(&estimator).to_string();
        let fitted = estimator.fit(&input);
        assert_eq!(
            FittedFusion::name(&fitted),
            who,
            "fitted artifact keeps the name"
        );

        let fused = estimator.fuse(&input);
        let predicted = fitted.predict(&inst.dataset, &inst.features);
        assert_assignments_identical(&fused.assignment, &predicted, &who, "fuse vs fit+predict");

        // Source accuracies must agree between the two paths (or be absent in both).
        match (&fused.source_accuracies, fitted.source_accuracies()) {
            (Some(a), Some(b)) => assert_eq!(a.as_slice(), b.as_slice(), "{who}: accuracies"),
            (None, None) => {}
            (a, b) => panic!("{who}: accuracy availability diverged ({a:?} vs {b:?})"),
        }
    }
}

#[test]
fn fitting_is_deterministic_across_the_shim_boundary() {
    let inst = shared_instance();
    let split = SplitPlan::new(0.1, 4).draw(&inst.truth, 0).unwrap();
    let train = split.train_truth(&inst.truth);
    let input = FusionInput::new(&inst.dataset, &inst.features, &train);

    for estimator in all_estimators() {
        let who = FusionEstimator::name(&estimator).to_string();
        let first = estimator.fit(&input).predict(&inst.dataset, &inst.features);
        let second = estimator.fit(&input).predict(&inst.dataset, &inst.features);
        assert_assignments_identical(&first, &second, &who, "fit twice");
        let fused_twice = estimator.fuse(&input);
        assert_assignments_identical(&first, &fused_twice.assignment, &who, "fuse after fits");
    }
}

#[test]
fn every_fitted_model_serves_a_held_out_delta_without_retraining() {
    let inst = shared_instance();
    let split = SplitPlan::new(0.15, 2).draw(&inst.truth, 0).unwrap();
    let train = split.train_truth(&inst.truth);
    let input = FusionInput::new(&inst.dataset, &inst.features, &train);

    // The held-out delta: two fresh sources weigh in on a fresh object, and one known
    // source extends an existing object's domain.
    let grown = {
        let mut delta = inst.dataset.to_builder();
        delta.observe("delta-src-a", "delta-object", "v0").unwrap();
        delta.observe("delta-src-b", "delta-object", "v0").unwrap();
        let existing = inst
            .dataset
            .object_name(ObjectId::new(0))
            .unwrap()
            .to_string();
        delta
            .observe("delta-src-a", &existing, "delta-value")
            .unwrap();
        delta.build()
    };
    let delta_object = grown.object_id("delta-object").unwrap();

    for estimator in all_estimators() {
        let who = FusionEstimator::name(&estimator).to_string();
        let fitted = estimator.fit(&input);
        let assignment = fitted.predict(&grown, &inst.features);
        // The unanimous fresh claims decide the fresh object.
        assert_eq!(
            assignment.get(delta_object),
            grown.value_id("v0"),
            "{who}: delta object"
        );
        // Every grown-domain posterior stays a well-formed distribution over the domain.
        for o in grown.object_ids() {
            let posterior = fitted.posterior(&grown, &inst.features, o);
            assert_eq!(
                posterior.len(),
                grown.domain(o).len(),
                "{who}: posterior arity"
            );
            for &p in &posterior {
                assert!(
                    p.is_finite() && (0.0..=1.0 + 1e-9).contains(&p),
                    "{who}: p = {p}"
                );
            }
        }
    }
}

#[test]
fn amortized_predict_is_dramatically_cheaper_than_repeated_fuse() {
    use std::time::Instant;

    let inst = shared_instance();
    // Half the objects labelled and a real epoch budget: the serving regime where every
    // `fuse` pays a full training run but `predict` only pays inference.
    let split = SplitPlan::new(0.5, 6).draw(&inst.truth, 0).unwrap();
    let train = split.train_truth(&inst.truth);
    let input = FusionInput::new(&inst.dataset, &inst.features, &train);
    let estimator = SlimFast::erm(SlimFastConfig {
        erm_epochs: 100,
        ..Default::default()
    });

    const ROUNDS: usize = 50;
    let fuse_start = Instant::now();
    for _ in 0..ROUNDS {
        std::hint::black_box(estimator.fuse(&input));
    }
    let fuse_time = fuse_start.elapsed();

    let amortized_start = Instant::now();
    let fitted = estimator.fit(&input);
    for _ in 0..ROUNDS {
        std::hint::black_box(fitted.predict(&inst.dataset, &inst.features));
    }
    let amortized_time = amortized_start.elapsed();

    // The acceptance bar is 5×; training dominates fuse so the real ratio is far
    // larger, which keeps this robust on loaded CI machines.
    assert!(
        amortized_time * 5 < fuse_time,
        "amortized inference should be at least 5x faster: 1 fit + {ROUNDS} predicts took \
         {amortized_time:?}, {ROUNDS} fuse calls took {fuse_time:?}"
    );
}
