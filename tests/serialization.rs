//! Model-persistence round trips through the facade: a fitted model serialized with
//! [`SlimFastModel::to_bytes`] and revived with [`SlimFastModel::from_bytes`] must
//! reproduce predictions, posteriors, and source accuracies bit-for-bit, and malformed
//! blobs must fail with the dedicated error variants.

use slimfast::data::DataError;
use slimfast::datagen::{AccuracyModel, FeatureModel, ObservationPattern};
use slimfast::prelude::*;

fn instance() -> SyntheticInstance {
    SyntheticConfig {
        name: "serialization".into(),
        num_sources: 60,
        num_objects: 200,
        domain_size: 3,
        pattern: ObservationPattern::PerObjectExact(7),
        accuracy: AccuracyModel {
            mean: 0.7,
            spread: 0.15,
        },
        features: FeatureModel {
            num_predictive: 3,
            num_noise: 2,
            predictive_strength: 0.3,
        },
        copying: None,
        seed: 11,
    }
    .generate()
}

fn trained_model(inst: &SyntheticInstance) -> (SlimFastModel, GroundTruth) {
    let split = SplitPlan::new(0.2, 3).draw(&inst.truth, 0).unwrap();
    let train = split.train_truth(&inst.truth);
    let input = FusionInput::new(&inst.dataset, &inst.features, &train);
    let (model, _) = SlimFast::erm(SlimFastConfig::default()).train(&input);
    (model, train)
}

#[test]
fn round_trip_preserves_predictions_bit_for_bit() {
    let inst = instance();
    let (model, _) = trained_model(&inst);

    let bytes = model.to_bytes();
    let restored = SlimFastModel::from_bytes(&bytes).unwrap();

    assert_eq!(restored.space(), model.space());
    assert_eq!(restored.weights(), model.weights());

    let original = model.predict(&inst.dataset, &inst.features);
    let revived = restored.predict(&inst.dataset, &inst.features);
    for o in inst.dataset.object_ids() {
        assert_eq!(original.get(o), revived.get(o), "prediction diverged");
        assert!(
            original.confidence(o) == revived.confidence(o),
            "confidence diverged"
        );
        assert_eq!(
            model.posterior(&inst.dataset, &inst.features, o),
            restored.posterior(&inst.dataset, &inst.features, o),
            "posterior diverged"
        );
    }
    let original_accs = model.source_accuracies(&inst.dataset, &inst.features);
    let revived_accs = restored.source_accuracies(&inst.dataset, &inst.features);
    assert_eq!(original_accs.as_slice(), revived_accs.as_slice());

    // Serialization is deterministic, so blobs can be content-addressed.
    assert_eq!(bytes, restored.to_bytes());
}

#[test]
fn corrupt_headers_are_rejected() {
    let inst = instance();
    let (model, _) = trained_model(&inst);
    let good = model.to_bytes();

    // Flipped magic.
    let mut bad = good.clone();
    bad[1] = b'?';
    assert!(matches!(
        SlimFastModel::from_bytes(&bad),
        Err(DataError::CorruptModel { .. })
    ));

    // Truncated blob (header survives, payload does not).
    assert!(matches!(
        SlimFastModel::from_bytes(&good[..good.len() - 9]),
        Err(DataError::CorruptModel { .. })
    ));

    // Declared sizes inconsistent with the payload.
    let mut bad = good.clone();
    bad[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        SlimFastModel::from_bytes(&bad),
        Err(DataError::CorruptModel { .. })
    ));

    // A single flipped payload bit fails the checksum.
    let mut bad = good.clone();
    let mid = good.len() / 2;
    bad[mid] ^= 0x01;
    assert!(matches!(
        SlimFastModel::from_bytes(&bad),
        Err(DataError::CorruptModel { message }) if message.contains("checksum")
    ));
}

#[test]
fn version_mismatches_are_reported_with_both_versions() {
    let inst = instance();
    let (model, _) = trained_model(&inst);
    let mut blob = model.to_bytes();
    blob[4..8].copy_from_slice(&(MODEL_FORMAT_VERSION + 7).to_le_bytes());
    match SlimFastModel::from_bytes(&blob) {
        Err(DataError::UnsupportedModelVersion { found, supported }) => {
            assert_eq!(found, MODEL_FORMAT_VERSION + 7);
            assert_eq!(supported, MODEL_FORMAT_VERSION);
        }
        other => panic!("expected a version error, got {other:?}"),
    }
}

#[test]
fn revived_models_serve_through_the_engine() {
    let inst = instance();
    let (model, train) = trained_model(&inst);
    let bytes = model.to_bytes();
    let restored = SlimFastModel::from_bytes(&bytes).unwrap();

    let engine = FusionEngine::from_model(
        SlimFast::erm(SlimFastConfig::default()),
        restored,
        OptimizerDecision::Erm,
        inst.dataset.clone(),
        inst.features.clone(),
        train,
        RefitPolicy::Never,
    );
    let direct = model.predict(&inst.dataset, &inst.features);
    let served = engine.predict();
    for o in inst.dataset.object_ids() {
        assert_eq!(direct.get(o), served.get(o));
    }
    assert_eq!(engine.refit_count(), 0);
}
