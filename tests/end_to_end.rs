//! Cross-crate integration tests: the full pipeline (generate → split → learn → infer →
//! evaluate) and the qualitative claims of the paper that the reproduction must preserve.

use slimfast::core::bounds;
use slimfast::prelude::*;

/// A reduced configuration so the whole suite stays fast in debug builds.
fn fast_config() -> SlimFastConfig {
    SlimFastConfig {
        erm_epochs: 30,
        em: slimfast::core::config::EmConfig {
            max_iterations: 8,
            m_step_epochs: 5,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn small_instance(
    mean_accuracy: f64,
    density: f64,
    feature_strength: f64,
    seed: u64,
) -> SyntheticInstance {
    slimfast::datagen::SyntheticConfig {
        name: "integration".into(),
        num_sources: 60,
        num_objects: 200,
        domain_size: 2,
        pattern: slimfast::datagen::ObservationPattern::Bernoulli(density),
        accuracy: slimfast::datagen::AccuracyModel {
            mean: mean_accuracy,
            spread: 0.1,
        },
        features: slimfast::datagen::FeatureModel {
            num_predictive: 3,
            num_noise: 3,
            predictive_strength: feature_strength,
        },
        copying: None,
        seed,
    }
    .generate()
}

#[test]
fn full_pipeline_beats_majority_vote_with_scarce_labels() {
    let instance = small_instance(0.65, 0.12, 0.3, 1);
    let split = SplitPlan::new(0.05, 3).draw(&instance.truth, 0).unwrap();
    let train = split.train_truth(&instance.truth);
    let input = FusionInput::new(&instance.dataset, &instance.features, &train);

    let slimfast_acc = SlimFast::new(fast_config())
        .fuse(&input)
        .assignment
        .accuracy_against(&instance.truth, &split.test);
    let majority_acc = MajorityVote
        .fuse(&input)
        .assignment
        .accuracy_against(&instance.truth, &split.test);
    assert!(
        slimfast_acc >= majority_acc - 0.02,
        "SLiMFast ({slimfast_acc:.3}) should not trail majority vote ({majority_acc:.3})"
    );
    assert!(
        slimfast_acc > 0.7,
        "absolute accuracy too low: {slimfast_acc:.3}"
    );
}

#[test]
fn domain_features_help_most_when_observations_are_sparse() {
    // The Genomics regime: few observations per source, feature-driven accuracy.
    let instance = slimfast::datagen::SyntheticConfig {
        name: "sparse".into(),
        num_sources: 250,
        num_objects: 200,
        domain_size: 2,
        pattern: slimfast::datagen::ObservationPattern::PerObjectRange { min: 2, max: 5 },
        accuracy: slimfast::datagen::AccuracyModel {
            mean: 0.62,
            spread: 0.02,
        },
        features: slimfast::datagen::FeatureModel {
            num_predictive: 4,
            num_noise: 2,
            predictive_strength: 0.5,
        },
        copying: None,
        seed: 5,
    }
    .generate();
    let split = SplitPlan::new(0.2, 1).draw(&instance.truth, 0).unwrap();
    let train = split.train_truth(&instance.truth);
    let no_features = FeatureMatrix::empty(instance.dataset.num_sources());
    let config = fast_config();

    let with_features = SlimFast::erm(config.clone())
        .fuse(&FusionInput::new(
            &instance.dataset,
            &instance.features,
            &train,
        ))
        .assignment
        .accuracy_against(&instance.truth, &split.test);
    let without_features = SlimFast::erm(config)
        .fuse(&FusionInput::new(&instance.dataset, &no_features, &train))
        .assignment
        .accuracy_against(&instance.truth, &split.test);
    assert!(
        with_features >= without_features,
        "features should help on sparse feature-driven data: {with_features:.3} vs {without_features:.3}"
    );
}

#[test]
fn em_improves_with_density_while_erm_depends_on_labels() {
    // Figure 4(b)'s shape on a small instance: at a fixed, small label budget EM gains more
    // from extra density than ERM does.
    let config = fast_config();
    let sparse = small_instance(0.7, 0.03, 0.15, 7);
    let dense = small_instance(0.7, 0.20, 0.15, 7);
    let mut em_gain = 0.0;
    let mut erm_gain = 0.0;
    for (instance, weight) in [(&sparse, -1.0), (&dense, 1.0)] {
        let split = SplitPlan::new(0.05, 1).draw(&instance.truth, 0).unwrap();
        let train = split.train_truth(&instance.truth);
        let no_features = FeatureMatrix::empty(instance.dataset.num_sources());
        let input = FusionInput::new(&instance.dataset, &no_features, &train);
        let em = SlimFast::em(config.clone())
            .fuse(&input)
            .assignment
            .accuracy_against(&instance.truth, &split.test);
        let erm = SlimFast::erm(config.clone())
            .fuse(&input)
            .assignment
            .accuracy_against(&instance.truth, &split.test);
        em_gain += weight * em;
        erm_gain += weight * erm;
    }
    assert!(
        em_gain > erm_gain - 0.05,
        "EM should benefit from density at least as much as ERM (EM gain {em_gain:.3}, ERM gain {erm_gain:.3})"
    );
    assert!(
        em_gain > 0.0,
        "denser observations should improve EM (gain {em_gain:.3})"
    );
}

#[test]
fn optimizer_agrees_with_the_better_algorithm_on_clear_cut_instances() {
    let config = fast_config();
    // Clear ERM territory: plenty of labels.
    let instance = small_instance(0.6, 0.05, 0.2, 11);
    let split = SplitPlan::new(0.6, 1).draw(&instance.truth, 0).unwrap();
    let train = split.train_truth(&instance.truth);
    let input = FusionInput::new(&instance.dataset, &instance.features, &train);
    let report = SlimFast::new(config.clone()).plan(&input);
    assert_eq!(report.decision, OptimizerDecision::Erm);

    // Clear EM territory: no labels at all.
    let empty = GroundTruth::empty(instance.dataset.num_objects());
    let input = FusionInput::new(&instance.dataset, &instance.features, &empty);
    let report = SlimFast::new(config).plan(&input);
    assert_eq!(report.decision, OptimizerDecision::Em);
}

#[test]
fn source_accuracy_estimates_beat_the_uninformed_baseline() {
    let instance = small_instance(0.7, 0.15, 0.25, 13);
    let split = SplitPlan::new(0.3, 1).draw(&instance.truth, 0).unwrap();
    let train = split.train_truth(&instance.truth);
    let input = FusionInput::new(&instance.dataset, &instance.features, &train);
    let output = SlimFast::new(fast_config()).fuse(&input);
    let estimated = output.source_accuracies.unwrap();
    let uninformed = SourceAccuracies::new(vec![0.5; instance.dataset.num_sources()]);
    let err = slimfast::eval::source_accuracy_error(&instance.dataset, &instance.truth, &estimated)
        .unwrap();
    let uninformed_err =
        slimfast::eval::source_accuracy_error(&instance.dataset, &instance.truth, &uninformed)
            .unwrap();
    assert!(
        err < uninformed_err,
        "estimated accuracies (err {err:.3}) should beat the 0.5 prior (err {uninformed_err:.3})"
    );
}

#[test]
fn simulated_datasets_expose_their_documented_shape() {
    // Use the smaller two simulators to keep the debug-build runtime reasonable.
    let stocks = DatasetKind::Stocks.generate(1);
    assert!(stocks.dataset.density() > 0.9, "Stocks must be dense");
    assert!(
        stocks.mean_true_accuracy() < 0.55,
        "Stocks sources are mostly unreliable"
    );
    let crowd = DatasetKind::Crowd.generate(1);
    for o in crowd.dataset.object_ids().take(50) {
        assert_eq!(crowd.dataset.observations_for_object(o).len(), 20);
    }
}

#[test]
fn theoretical_rates_order_the_regimes_consistently() {
    // More labels => smaller ERM rate; more density/accuracy => smaller EM rate; and the
    // units-of-information comparison follows the same direction on actual instances.
    assert!(bounds::erm_rate(10, 2000) < bounds::erm_rate(10, 20));
    assert!(bounds::em_rate(10, 500, 500, 0.05, 0.4) < bounds::em_rate(10, 500, 500, 0.01, 0.1));

    let sparse = small_instance(0.7, 0.03, 0.15, 17);
    let dense = small_instance(0.7, 0.20, 0.15, 17);
    let sparse_units =
        slimfast::core::optimizer::em_units(&sparse.dataset, 0.7, Default::default());
    let dense_units = slimfast::core::optimizer::em_units(&dense.dataset, 0.7, Default::default());
    assert!(dense_units > sparse_units);
}
