//! End-to-end determinism of the windowed-stream scenario: the full serving path —
//! sharded ingest, delta-log appends, window evictions, policy-driven compactions,
//! and refits — must produce bitwise-identical reports at any worker-thread count.
//!
//! CI runs this suite under `SLIMFAST_THREADS={1,4}`; the explicit-thread matrix
//! below additionally pins the config-level knob so the invariant holds regardless
//! of the environment.

use slimfast::eval::{run_windowed_stream, StreamScenarioConfig, WindowedStreamReport};
use slimfast::prelude::*;

fn run_with_threads(threads: usize) -> WindowedStreamReport {
    run_windowed_stream(&StreamScenarioConfig {
        slimfast: SlimFastConfig::default().with_threads(threads),
        ..StreamScenarioConfig::default()
    })
}

#[test]
fn windowed_stream_is_bitwise_identical_across_thread_counts() {
    let reference = run_with_threads(1);
    // The scenario must actually exercise the maintenance machinery for the
    // comparison to mean anything.
    assert!(reference.evictions > 0, "scenario never slid the window");
    assert!(reference.refits >= 1, "scenario never refitted");

    let bits = |w: &[f64]| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for threads in [2, 4] {
        let report = run_with_threads(threads);
        assert_eq!(
            bits(&reference.final_weights),
            bits(&report.final_weights),
            "thread count changed the final model weights (threads = {threads})"
        );
        assert_eq!(
            reference, report,
            "thread count changed the report (threads = {threads})"
        );
    }
}

#[test]
fn windowed_stream_bookkeeping_is_conserved() {
    let report = run_with_threads(1);
    let delivered: usize = report.phases.iter().map(|p| p.claims).sum();
    assert_eq!(
        report.final_live + report.evictions,
        delivered,
        "live + evicted must equal delivered claims"
    );
    let horizon = StreamScenarioConfig::default().horizon_claims;
    assert!(
        report.final_live <= horizon,
        "window overflowed its horizon"
    );
    for pair in report.phases.windows(2) {
        assert!(pair[0].evictions <= pair[1].evictions);
        assert!(pair[0].refits <= pair[1].refits);
    }
}
