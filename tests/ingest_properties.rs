//! Property-based tests for the sharded ingest pipeline and the incremental CSR
//! maintenance path (delta-log appends, tombstoned evictions, compaction): for
//! arbitrary claim streams, every maintenance schedule must be invisible — the
//! sharded build must match the sequential one at any shard size and lane count, and
//! a compacted dataset must match a from-scratch rebuild of its live claims.

use proptest::prelude::*;

use slimfast::data::ingest::{build_claims_sharded_with, read_observations_csv_sharded_with};
use slimfast::data::read_observations_csv;
use slimfast::prelude::*;

/// A conflict-free named claim stream: distinct (source, object) pairs in arbitrary
/// order, each with an arbitrary value from a small shared domain.
fn named_claims_strategy() -> impl Strategy<Value = Vec<NamedObservation>> {
    (2usize..8, 1usize..10, 2usize..4).prop_flat_map(|(s, o, d)| {
        // Claim order varies through the per-claim value draws (the stream walks the
        // source × object grid, so shard boundaries cut rows at every offset).
        let values = proptest::collection::vec(0..d, s * o);
        (Just(s), Just(o), values, Just(d)).prop_map(|(s, _o, values, _)| {
            let mut claims = Vec::new();
            for (idx, v) in values.into_iter().enumerate() {
                claims.push(NamedObservation::new(
                    format!("s{}", idx % s),
                    format!("o{}", idx / s),
                    format!("v{v}"),
                ));
            }
            claims
        })
    })
}

/// The maintenance schedule applied on top of the base stream: which claims arrive
/// late (through the delta log) and which (source, object) pairs get evicted.
fn schedule_strategy() -> impl Strategy<Value = (Vec<NamedObservation>, usize, Vec<usize>)> {
    named_claims_strategy().prop_flat_map(|claims| {
        let n = claims.len();
        let split = 0..=n;
        let evictions = proptest::collection::vec(0..n.max(1), 0..=n.min(12));
        (Just(claims), split, evictions)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sharded ingest is content-identical to the sequential builder for any shard
    /// size and lane count — including shards of a single claim, where every name is
    /// re-interned across a shard boundary.
    #[test]
    fn sharded_ingest_matches_the_sequential_build(
        claims in named_claims_strategy(),
        shard_claims in 1usize..8,
    ) {
        let mut builder = DatasetBuilder::new();
        for c in &claims {
            builder.observe(&c.source, &c.object, &c.value).unwrap();
        }
        let sequential = builder.build();
        for threads in [1, 2, 4] {
            let sharded = build_claims_sharded_with(&claims, threads, shard_claims).unwrap();
            prop_assert!(
                sequential.same_content(&sharded),
                "sharded build diverged at shard_claims={shard_claims} threads={threads}"
            );
        }
    }

    /// The sharded CSV reader agrees with the sequential one even when shard
    /// boundaries fall mid-line (tiny byte shards force every split position).
    #[test]
    fn sharded_csv_ingest_matches_the_sequential_reader(
        claims in named_claims_strategy(),
        shard_bytes in 1usize..64,
    ) {
        let mut csv = String::new();
        for c in &claims {
            csv.push_str(&format!("{},{},{}\n", c.source, c.object, c.value));
        }
        let sequential = read_observations_csv(csv.as_bytes()).unwrap();
        let sharded = read_observations_csv_sharded_with(csv.as_bytes(), 4, shard_bytes).unwrap();
        prop_assert!(
            sequential.same_content(&sharded),
            "sharded CSV build diverged at shard_bytes={shard_bytes}"
        );
    }

    /// Incremental maintenance is invisible: a dataset assembled through any mix of
    /// batch build, delta-log appends, and evictions answers queries identically
    /// before and after compaction, and the compacted dataset is content-identical
    /// to a from-scratch rebuild of its live claim log.
    #[test]
    fn compaction_matches_a_from_scratch_rebuild(
        (claims, split, evictions) in schedule_strategy(),
    ) {
        // Batch-build the prefix, stream the suffix through the delta log.
        let mut builder = DatasetBuilder::new();
        for c in &claims[..split] {
            builder.observe(&c.source, &c.object, &c.value).unwrap();
        }
        let mut dataset = builder.build();
        for c in &claims[split..] {
            dataset.append_named(&c.source, &c.object, &c.value).unwrap();
        }
        // Evict a pseudo-random subset of the claims that actually landed.
        for &pick in &evictions {
            if claims.is_empty() {
                break;
            }
            let c = &claims[pick % claims.len()];
            let s = dataset.source_id(&c.source).unwrap();
            let o = dataset.object_id(&c.object).unwrap();
            dataset.evict(s, o); // false on already-evicted picks is fine
        }

        let uncompacted = dataset.clone();
        dataset.compact();
        prop_assert!(dataset.is_compacted());
        prop_assert!(
            uncompacted.same_content(&dataset),
            "compaction changed the dataset's logical content"
        );
        let rebuilt = dataset.to_builder().build();
        prop_assert!(
            dataset.same_content(&rebuilt),
            "compacted dataset diverged from a from-scratch rebuild"
        );

        // Spot-check the overlay-backed accessors against the compacted base arrays.
        for o in uncompacted.object_ids() {
            prop_assert_eq!(
                uncompacted.observations_for_object(o),
                dataset.observations_for_object(o)
            );
            prop_assert_eq!(uncompacted.domain(o), dataset.domain(o));
        }
        for s in uncompacted.source_ids() {
            prop_assert_eq!(
                uncompacted.observations_by_source(s),
                dataset.observations_by_source(s)
            );
        }
    }
}
