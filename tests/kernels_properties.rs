//! Property tests for the SoA kernel layer (`slimfast_optim::kernels`): every batched
//! kernel must agree with its scalar reference (`sigmoid`, `softmax_in_place`,
//! `SparseVec::dot`) to within 1e-12, and must honor the determinism contract the
//! module documents — elementwise slicing invariance (the same values come out no
//! matter how a buffer is chunked), per-row independence of the segmented softmax, and
//! a fixed summation order for `dot_csr` / `axpy_scatter`. A final end-to-end test
//! fits a full EM model through the kernel-backed hot paths at 1, 2, and 4 threads and
//! asserts the fitted weights and served posteriors are bitwise-identical.

use proptest::prelude::*;

use slimfast::optim::kernels;
use slimfast::optim::{sigmoid, softmax_in_place, SparseVec};
use slimfast::prelude::*;

/// Finite activations in the range the trust/ERM models actually produce.
fn activations(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-40.0f64..40.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `sigmoid_slice` matches the scalar libm-backed `sigmoid` within 1e-12.
    #[test]
    fn sigmoid_slice_matches_scalar_reference(xs in activations(0..200)) {
        let mut batched = xs.clone();
        kernels::sigmoid_slice(&mut batched);
        for (&x, &b) in xs.iter().zip(&batched) {
            let reference = sigmoid(x);
            prop_assert!(
                (b - reference).abs() <= 1e-12,
                "sigmoid({x}) = {b}, reference {reference}"
            );
        }
    }

    /// `ln_slice` matches libm `ln` within 1e-12 relative over many magnitudes.
    #[test]
    fn ln_slice_matches_scalar_reference(
        xs in proptest::collection::vec((1e-12f64..1.0, -11i32..12), 0..200)
    ) {
        let values: Vec<f64> = xs.iter().map(|&(m, e)| m * 10f64.powi(e)).collect();
        let mut batched = values.clone();
        kernels::ln_slice(&mut batched);
        for (&x, &b) in values.iter().zip(&batched) {
            let reference = x.ln();
            let tolerance = 1e-12 * reference.abs().max(1.0);
            prop_assert!(
                (b - reference).abs() <= tolerance,
                "ln({x}) = {b}, reference {reference}"
            );
        }
    }

    /// `softmax_row` matches the scalar `softmax_in_place` reference within 1e-12.
    #[test]
    fn softmax_row_matches_scalar_reference(xs in activations(1..40)) {
        let mut batched = xs.clone();
        kernels::softmax_row(&mut batched);
        let mut reference = xs.clone();
        softmax_in_place(&mut reference);
        for (&b, &r) in batched.iter().zip(&reference) {
            prop_assert!((b - r).abs() <= 1e-12, "softmax {b} vs reference {r}");
        }
    }

    /// The segmented `softmax_rows` is bitwise-identical to normalizing each row
    /// independently with `softmax_row`: rows cannot contaminate each other, so any
    /// chunking of a batch of rows yields the same bits.
    #[test]
    fn softmax_rows_is_bitwise_per_row_independent(
        rows in proptest::collection::vec(activations(1..8), 1..20),
        base in 0u32..1000,
    ) {
        let mut offsets = vec![base];
        let mut flat = Vec::new();
        for row in &rows {
            flat.extend_from_slice(row);
            offsets.push(base + flat.len() as u32);
        }
        let mut segmented = flat.clone();
        kernels::softmax_rows(&mut segmented, &offsets);
        let mut cursor = 0;
        for row in &rows {
            let mut alone = row.clone();
            kernels::softmax_row(&mut alone);
            for &expected in &alone {
                prop_assert_eq!(segmented[cursor].to_bits(), expected.to_bits());
                cursor += 1;
            }
        }
    }

    /// Elementwise kernels are slicing-invariant: processing a buffer in arbitrary
    /// chunks produces the same bits as one call over the whole buffer. This is the
    /// contract that makes E-step results independent of the parallel chunk grid.
    #[test]
    fn sigmoid_slice_is_chunking_invariant(
        xs in activations(1..200),
        chunk in 1usize..64,
    ) {
        let mut whole = xs.clone();
        kernels::sigmoid_slice(&mut whole);
        let mut chunked = xs.clone();
        for slice in chunked.chunks_mut(chunk) {
            kernels::sigmoid_slice(slice);
        }
        let whole_bits: Vec<u64> = whole.iter().map(|v| v.to_bits()).collect();
        let chunked_bits: Vec<u64> = chunked.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(whole_bits, chunked_bits);
    }

    /// `dot_csr` matches `SparseVec::dot` within a magnitude-scaled tolerance (the
    /// two sum in different orders, so agreement is modulo rounding, not bitwise).
    #[test]
    fn dot_csr_matches_sparse_vec_reference(
        pairs in proptest::collection::vec((0u32..50, -10.0f64..10.0), 0..120),
        weights in proptest::collection::vec(-10.0f64..10.0, 50),
    ) {
        let params: Vec<u32> = pairs.iter().map(|&(p, _)| p).collect();
        let values: Vec<f64> = pairs.iter().map(|&(_, v)| v).collect();
        let batched = kernels::dot_csr(&params, &values, &weights);
        let reference = SparseVec::from_pairs(
            pairs.iter().map(|&(p, v)| (p as usize, v)),
        )
        .dot(&weights);
        // SparseVec::from_pairs merges duplicate indices but the dot is mathematically
        // identical; bound the difference by the magnitude of the summed terms.
        let magnitude: f64 = pairs
            .iter()
            .map(|&(p, v)| (v * weights[p as usize]).abs())
            .sum();
        prop_assert!(
            (batched - reference).abs() <= 1e-12 * magnitude.max(1.0),
            "dot_csr {batched} vs SparseVec::dot {reference}"
        );
    }

    /// `dot_csr`'s summation order is a function of row length only: splitting the
    /// weight vector reads across duplicated calls changes nothing, and the same
    /// (params, values) always produce the same bits.
    #[test]
    fn dot_csr_is_reproducible_bitwise(
        pairs in proptest::collection::vec((0u32..50, -10.0f64..10.0), 0..120),
        weights in proptest::collection::vec(-10.0f64..10.0, 50),
    ) {
        let params: Vec<u32> = pairs.iter().map(|&(p, _)| p).collect();
        let values: Vec<f64> = pairs.iter().map(|&(_, v)| v).collect();
        let a = kernels::dot_csr(&params, &values, &weights);
        let b = kernels::dot_csr(&params, &values, &weights);
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }

    /// `axpy_scatter` applies updates strictly in index order: it is bitwise-identical
    /// to the obvious scalar loop.
    #[test]
    fn axpy_scatter_matches_in_order_scalar_loop(
        pairs in proptest::collection::vec((0u32..50, -10.0f64..10.0), 0..120),
        scale in -4.0f64..4.0,
        seed in -10.0f64..10.0,
    ) {
        let params: Vec<u32> = pairs.iter().map(|&(p, _)| p).collect();
        let values: Vec<f64> = pairs.iter().map(|&(_, v)| v).collect();
        let mut batched = vec![seed; 50];
        kernels::axpy_scatter(scale, &params, &values, &mut batched);
        let mut reference = vec![seed; 50];
        for (&p, &v) in params.iter().zip(&values) {
            reference[p as usize] += scale * v;
        }
        let batched_bits: Vec<u64> = batched.iter().map(|v| v.to_bits()).collect();
        let reference_bits: Vec<u64> = reference.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(batched_bits, reference_bits);
    }
}

/// A fit large enough to engage the batched parallel minimizer and the chunked E-step.
fn fit_instance() -> SyntheticInstance {
    SyntheticConfig {
        name: "kernel-determinism".into(),
        num_sources: 50,
        num_objects: 500,
        domain_size: 3,
        pattern: slimfast::datagen::ObservationPattern::Bernoulli(0.1),
        accuracy: slimfast::datagen::AccuracyModel {
            mean: 0.72,
            spread: 0.12,
        },
        features: slimfast::datagen::FeatureModel {
            num_predictive: 3,
            num_noise: 2,
            predictive_strength: 0.25,
        },
        copying: None,
        seed: 20170514,
    }
    .generate()
}

/// The end-to-end contract the kernel layer must preserve: a full EM fit through the
/// flat-layout hot paths (batched trust sigmoid, segmented softmax E-step, CSR dot
/// M-step, kernel-softmax serving) yields bitwise-identical weights and posteriors at
/// 1, 2, and 4 threads.
#[test]
fn full_fit_through_kernel_paths_is_bitwise_identical_across_threads() {
    let instance = fit_instance();
    assert!(
        instance.dataset.num_observations() >= 4 * SlimFastConfig::default().batch_size,
        "instance must be large enough to engage the batched parallel minimizer"
    );
    let truth = GroundTruth::empty(instance.dataset.num_objects());
    let input = FusionInput::new(&instance.dataset, &instance.features, &truth);

    let fit_bits = |threads: usize| -> (Vec<u64>, Vec<Vec<u64>>) {
        let config = SlimFastConfig::default().with_seed(3).with_threads(threads);
        let estimator = SlimFast::em(config);
        let (model, _) = estimator.train(&input);
        let weights: Vec<u64> = model.weights().iter().map(|w| w.to_bits()).collect();
        let fitted = estimator.fit(&input);
        let posteriors: Vec<Vec<u64>> = instance
            .dataset
            .object_ids()
            .map(|o| {
                fitted
                    .posterior(&instance.dataset, &instance.features, o)
                    .iter()
                    .map(|p| p.to_bits())
                    .collect()
            })
            .collect();
        (weights, posteriors)
    };

    let single = fit_bits(1);
    let double = fit_bits(2);
    let quad = fit_bits(4);
    assert_eq!(single, double, "threads = 2 changed the fitted bits");
    assert_eq!(single, quad, "threads = 4 changed the fitted bits");
}

/// Supervised (ERM) training also runs entirely on the kernel layer; it must be just
/// as thread-invariant as the unsupervised EM path.
#[test]
fn supervised_fit_through_kernel_paths_is_bitwise_identical_across_threads() {
    let instance = fit_instance();
    let split = SplitPlan::new(0.3, 11)
        .draw(&instance.truth, 1)
        .expect("split");
    let train = split.train_truth(&instance.truth);
    let input = FusionInput::new(&instance.dataset, &instance.features, &train);

    let fuse_bits = |threads: usize| -> Vec<(ObjectId, ValueId, u64)> {
        let config = SlimFastConfig::default().with_seed(9).with_threads(threads);
        let output = SlimFast::new(config).fuse(&input);
        output
            .assignment
            .iter()
            .map(|(o, v, p)| (o, v, p.to_bits()))
            .collect()
    };

    let single = fuse_bits(1);
    assert_eq!(single, fuse_bits(2), "threads = 2 changed the fused output");
    assert_eq!(single, fuse_bits(4), "threads = 4 changed the fused output");
}
