//! Lifecycle tests for the persistent worker pool: one process-wide pool serves every
//! fit and never lets reuse (or lane count) leak into results.
//!
//! The instance is sized so the pool-engagement conditions genuinely hold (asserted
//! below): the E-step grid spans several object chunks above the inline item threshold,
//! and the auto-tuned SGD batch splits into at least `2 × 2` gradient chunks — so on
//! any multi-core machine these fits actually publish pool jobs. (On a single-core
//! machine the lane clamp collapses them to inline execution by design; the in-crate
//! pool unit tests cover multi-worker scheduling there by bypassing the clamp.)
//!
//! The companion `SLIMFAST_THREADS`-mutation test lives alone in `pool_env.rs`:
//! mutating the process environment from a multi-threaded libtest binary is a data
//! race, so it gets its own process.

use slimfast::core::config::EmConfig;
use slimfast::core::exec;
use slimfast::optim::auto_batch_size;
use slimfast::prelude::*;

/// Large enough that the sharded E-step crosses `INLINE_MIN_ITEMS` with several object
/// chunks and the auto-tuned batch has a chunk grid worth fanning out; small enough for
/// a debug-mode test (EM is capped at 3 iterations below).
fn instance() -> SyntheticInstance {
    SyntheticConfig {
        name: "pool-reuse".into(),
        num_sources: 100,
        num_objects: 2_500,
        domain_size: 2,
        pattern: slimfast::datagen::ObservationPattern::Bernoulli(0.15),
        accuracy: slimfast::datagen::AccuracyModel {
            mean: 0.72,
            spread: 0.12,
        },
        features: slimfast::datagen::FeatureModel {
            num_predictive: 2,
            num_noise: 1,
            predictive_strength: 0.2,
        },
        copying: None,
        seed: 41,
    }
    .generate()
}

fn config(threads: usize) -> SlimFastConfig {
    SlimFastConfig {
        em: EmConfig {
            max_iterations: 3,
            m_step_epochs: 2,
            ..Default::default()
        },
        ..SlimFastConfig::default()
            .with_seed(11)
            .with_threads(threads)
    }
}

/// Fails loudly if future tuning changes shrink this instance below the thresholds at
/// which multi-lane machines actually route these fits through the pool.
fn assert_pool_engages(instance: &SyntheticInstance) {
    let claims = instance.dataset.num_observations();
    let posterior_slots = 2 * instance.dataset.num_objects();
    assert!(
        posterior_slots >= exec::INLINE_MIN_ITEMS,
        "E-step posterior slab ({posterior_slots} slots) runs inline everywhere"
    );
    assert!(
        instance.dataset.num_objects() > 1024,
        "E-step grid is a single object chunk"
    );
    let chunks = auto_batch_size(claims).div_ceil(32);
    assert!(
        chunks >= 4,
        "auto batch of {claims} claims yields only {chunks} gradient chunks — \
         batches run inline even at 2 lanes"
    );
}

fn fit_weight_bits(instance: &SyntheticInstance, threads: usize) -> Vec<u64> {
    let truth = GroundTruth::empty(instance.dataset.num_objects());
    let input = FusionInput::new(&instance.dataset, &instance.features, &truth);
    let (model, _) = SlimFast::em(config(threads)).train(&input);
    model.weights().iter().map(|w| w.to_bits()).collect()
}

/// Consecutive fits share one process-wide pool (and the SGD scratch freelist);
/// interleaving thread counts across fits must leave every fit bitwise-identical.
#[test]
fn pool_reuse_across_consecutive_fits_is_bitwise_deterministic() {
    let inst = instance();
    assert_pool_engages(&inst);
    let first_t1 = fit_weight_bits(&inst, 1);
    let first_t4 = fit_weight_bits(&inst, 4);
    let second_t1 = fit_weight_bits(&inst, 1);
    let second_t4 = fit_weight_bits(&inst, 4);
    assert_eq!(first_t1, first_t4, "thread count changed fitted weights");
    assert_eq!(first_t1, second_t1, "pool reuse changed a 1-thread fit");
    assert_eq!(first_t4, second_t4, "pool reuse changed a 4-thread fit");
}

/// Explicit thread requests beyond the machine's parallelism are clamped to real lanes
/// (never oversubscribed) without changing results.
#[test]
fn oversubscribed_thread_requests_are_harmless() {
    let inst = instance();
    let reference = fit_weight_bits(&inst, 1);
    let oversubscribed = fit_weight_bits(&inst, 64);
    assert_eq!(reference, oversubscribed);
    assert!(exec::execution_lanes(64, usize::MAX) <= exec::max_lanes());
}
