//! The `SLIMFAST_THREADS`-reconfiguration lifecycle test.
//!
//! This test lives **alone** in its own integration-test binary on purpose:
//! `std::env::set_var` is a data race against any concurrent `getenv` in the same
//! process (glibc may reallocate the environment block), and libtest runs the tests of
//! one binary on parallel threads. With a single `#[test]` there is no concurrent test
//! code to race with. Do not add further tests to this file.

use slimfast::core::config::EmConfig;
use slimfast::core::exec;
use slimfast::prelude::*;

fn instance() -> SyntheticInstance {
    SyntheticConfig {
        name: "pool-env".into(),
        num_sources: 100,
        num_objects: 2_500,
        domain_size: 2,
        pattern: slimfast::datagen::ObservationPattern::Bernoulli(0.15),
        accuracy: slimfast::datagen::AccuracyModel {
            mean: 0.72,
            spread: 0.12,
        },
        features: slimfast::datagen::FeatureModel {
            num_predictive: 2,
            num_noise: 1,
            predictive_strength: 0.2,
        },
        copying: None,
        seed: 41,
    }
    .generate()
}

fn fit_weight_bits(instance: &SyntheticInstance, threads: usize) -> Vec<u64> {
    let truth = GroundTruth::empty(instance.dataset.num_objects());
    let input = FusionInput::new(&instance.dataset, &instance.features, &truth);
    let config = SlimFastConfig {
        em: EmConfig {
            max_iterations: 3,
            m_step_epochs: 2,
            ..Default::default()
        },
        ..SlimFastConfig::default()
            .with_seed(11)
            .with_threads(threads)
    };
    let (model, _) = SlimFast::em(config).train(&input);
    model.weights().iter().map(|w| w.to_bits()).collect()
}

/// The pool survives `SLIMFAST_THREADS` changes between fits: reconfiguring the
/// environment only changes how many lanes the next auto-resolved fit asks for — no
/// teardown, no re-initialisation, and no drift in results. (Explicit thread counts
/// never read the variable, which also pins down the precedence rule.)
#[test]
fn pool_survives_thread_env_changes_between_fits() {
    let inst = instance();
    let reference = fit_weight_bits(&inst, 1);
    for env_threads in ["1", "4", "2", "4"] {
        std::env::set_var(exec::THREADS_ENV, env_threads);
        assert_eq!(exec::num_threads(), env_threads.parse::<usize>().unwrap());
        let auto = fit_weight_bits(&inst, 0);
        assert_eq!(
            reference, auto,
            "fit drifted after SLIMFAST_THREADS={env_threads}"
        );
    }
    std::env::remove_var(exec::THREADS_ENV);
    // The pool never shrinks: whatever lanes earlier fits spawned are still parked and
    // reusable, and a fresh fit still works after the variable is gone.
    assert_eq!(reference, fit_weight_bits(&inst, 0));
}
