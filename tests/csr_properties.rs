//! Property-based tests for the columnar (CSR) dataset layout: every accessor must
//! agree with a naive nested-`Vec` oracle built from the same claim stream, for
//! arbitrary builders — including reserved silent entities, duplicate claims, and
//! source restriction.

use std::collections::HashMap;

use proptest::prelude::*;

use slimfast::prelude::*;

/// Strategy producing a small random fusion instance as raw claims.
fn claims_strategy() -> impl Strategy<Value = (usize, usize, usize, Vec<(usize, usize, usize)>)> {
    // (num_sources, num_objects, domain_size, claims)
    (2usize..10, 1usize..12, 2usize..5).prop_flat_map(|(s, o, d)| {
        let claims = proptest::collection::vec((0..s, 0..o, 0..d), 0..80);
        (Just(s), Just(o), Just(d), claims)
    })
}

/// The pre-CSR reference implementation: nested adjacency lists filled directly from
/// the claim stream under the same first-claim-wins conflict rule the builder applies.
struct NestedOracle {
    by_object: Vec<Vec<(usize, usize)>>,
    by_source: Vec<Vec<(usize, usize)>>,
    domains: Vec<Vec<usize>>,
    asserted: HashMap<(usize, usize), usize>,
    num_observations: usize,
}

impl NestedOracle {
    fn build(num_sources: usize, num_objects: usize, claims: &[(usize, usize, usize)]) -> Self {
        let mut oracle = NestedOracle {
            by_object: vec![Vec::new(); num_objects],
            by_source: vec![Vec::new(); num_sources],
            domains: vec![Vec::new(); num_objects],
            asserted: HashMap::new(),
            num_observations: 0,
        };
        for &(s, o, v) in claims {
            match oracle.asserted.get(&(s, o)) {
                // Duplicate or conflicting claim: first claim wins, exactly like
                // `DatasetBuilder::observe_ids` (conflicts error there and are dropped
                // by the test harness).
                Some(_) => continue,
                None => {
                    oracle.asserted.insert((s, o), v);
                    oracle.by_object[o].push((s, v));
                    oracle.by_source[s].push((o, v));
                    if !oracle.domains[o].contains(&v) {
                        oracle.domains[o].push(v);
                    }
                    oracle.num_observations += 1;
                }
            }
        }
        oracle
    }
}

fn build_dataset(
    num_sources: usize,
    num_objects: usize,
    domain: usize,
    claims: &[(usize, usize, usize)],
) -> Dataset {
    let mut builder = DatasetBuilder::with_capacity(claims.len());
    builder.reserve_sources(num_sources);
    builder.reserve_objects(num_objects);
    for d in 0..domain {
        builder.intern_value(&format!("v{d}"));
    }
    for &(s, o, v) in claims {
        let _ = builder.observe_ids(SourceId::new(s), ObjectId::new(o), ValueId::new(v));
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every CSR accessor agrees with the nested-Vec oracle: same entry sets per row
    /// (CSR rows are additionally sorted), same first-seen domains, same point lookups.
    fn csr_accessors_agree_with_the_nested_oracle(
        (s, o, d, claims) in claims_strategy(),
    ) {
        let dataset = build_dataset(s, o, d, &claims);
        let oracle = NestedOracle::build(s, o, &claims);

        prop_assert_eq!(dataset.num_sources(), s);
        prop_assert_eq!(dataset.num_objects(), o);
        prop_assert_eq!(dataset.num_observations(), oracle.num_observations);

        for obj in 0..o {
            let got: Vec<(usize, usize)> = dataset
                .observations_for_object(ObjectId::new(obj))
                .iter()
                .map(|(src, v)| (src.index(), v.index()))
                .collect();
            let mut expect = oracle.by_object[obj].clone();
            expect.sort_unstable();
            prop_assert_eq!(&got, &expect, "object row {} mismatch", obj);
            // Rows are sorted by source, enabling binary search.
            prop_assert!(got.windows(2).all(|w| w[0].0 < w[1].0));

            let domain: Vec<usize> = dataset
                .domain(ObjectId::new(obj))
                .iter()
                .map(|v| v.index())
                .collect();
            prop_assert_eq!(&domain, &oracle.domains[obj], "domain {} mismatch", obj);
        }

        for src in 0..s {
            let got: Vec<(usize, usize)> = dataset
                .observations_by_source(SourceId::new(src))
                .iter()
                .map(|(obj, v)| (obj.index(), v.index()))
                .collect();
            let mut expect = oracle.by_source[src].clone();
            expect.sort_unstable();
            prop_assert_eq!(&got, &expect, "source row {} mismatch", src);
        }

        // Point lookups across the whole grid match the oracle map.
        for src in 0..s {
            for obj in 0..o {
                let got = dataset
                    .value_of(SourceId::new(src), ObjectId::new(obj))
                    .map(|v| v.index());
                prop_assert_eq!(got, oracle.asserted.get(&(src, obj)).copied());
            }
        }

        // Conflicting objects are exactly those with >1 domain value.
        let got: Vec<usize> = dataset.conflicting_objects().map(|x| x.index()).collect();
        let expect: Vec<usize> = (0..o).filter(|&i| oracle.domains[i].len() > 1).collect();
        prop_assert_eq!(got, expect);
    }

    /// Reopening a dataset as a builder and rebuilding reproduces every row bit-for-bit,
    /// and restriction to a random source subset matches the oracle filtered the same way.
    fn rebuild_and_restriction_preserve_the_layout(
        (s, o, d, claims) in claims_strategy(),
        keep_mask in proptest::collection::vec(0usize..2, 10),
    ) {
        let dataset = build_dataset(s, o, d, &claims);

        let rebuilt = dataset.to_builder().build();
        prop_assert_eq!(rebuilt.num_observations(), dataset.num_observations());
        for obj in dataset.object_ids() {
            prop_assert_eq!(
                rebuilt.observations_for_object(obj),
                dataset.observations_for_object(obj)
            );
            prop_assert_eq!(rebuilt.domain(obj), dataset.domain(obj));
        }

        let keep: Vec<SourceId> = (0..s)
            .filter(|&i| keep_mask[i % keep_mask.len()] == 1)
            .map(SourceId::new)
            .collect();
        let (restricted, kept) = dataset.restrict_sources(&keep);
        prop_assert_eq!(restricted.num_sources(), kept.len());
        prop_assert_eq!(restricted.num_objects(), dataset.num_objects());
        for (new_idx, &old) in kept.iter().enumerate() {
            prop_assert_eq!(
                restricted.observations_by_source(SourceId::new(new_idx)),
                dataset.observations_by_source(old)
            );
        }
        let expected_claims: usize = kept
            .iter()
            .map(|&old| dataset.observations_by_source(old).len())
            .sum();
        prop_assert_eq!(restricted.num_observations(), expected_claims);
    }
}
