//! Integration tests of the concurrent serving tier.
//!
//! Two guarantees are pinned here, end to end through the public `slimfast` facade:
//!
//! 1. **Snapshot determinism** — a snapshot published after a *background* refit serves
//!    posteriors bitwise-identical to a synchronous [`FusionEngine::refit`] at the same
//!    claim count, regardless of the worker-thread count. CI runs this suite under
//!    `SLIMFAST_THREADS={1,4}`; the explicit-thread matrix below additionally pins the
//!    config-level knob so the invariant holds regardless of the environment.
//! 2. **Reader/writer isolation** — N reader threads serving lock-free from published
//!    snapshots stay consistent (normalized posteriors, monotone epochs) while the
//!    writer ingests, evicts, publishes, and keeps refits in flight underneath them.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use slimfast::prelude::*;

/// Deterministic claim stream over a fixed source/object pool (binary domains). The
/// value is a pure function of the (source, object) pair, so a stream longer than the
/// pair period re-asserts identical claims (idempotent) instead of conflicting.
fn stream_claims(n: usize) -> Vec<NamedObservation> {
    (0..n)
        .map(|i| {
            let (s, o) = (i % 17, i % 113);
            let h = ((s * 1000003 + o * 7919) as u64).wrapping_mul(0x9e3779b97f4a7c15);
            let value = if h >> 63 == 0 { "v0" } else { "v1" };
            NamedObservation::new(format!("s{s}"), format!("o{o}"), value)
        })
        .collect()
}

fn fitted_engine(threads: usize) -> FusionEngine {
    let initial = stream_claims(400);
    let dataset = build_claims_sharded(&initial, threads).expect("stream is conflict-free");
    let features = FeatureMatrix::empty(dataset.num_sources());
    let mut truth = GroundTruth::empty(dataset.num_objects());
    for i in (0..dataset.num_objects()).step_by(9) {
        let o = ObjectId::new(i);
        truth.set(
            o,
            dataset
                .domain(o)
                .first()
                .copied()
                .unwrap_or(ValueId::new(0)),
        );
    }
    FusionEngine::fit(
        SlimFast::em(SlimFastConfig::default().with_threads(threads)),
        dataset,
        features,
        truth,
        RefitPolicy::Never,
    )
}

/// Fresh claims (objects disjoint from the fitted instance) in two halves: the refit
/// captures after the first half, the second half stays uncovered.
fn delta_halves() -> (Vec<NamedObservation>, Vec<NamedObservation>) {
    let mut claims = Vec::new();
    for i in 0..120usize {
        claims.push(NamedObservation::new(
            format!("s{}", i % 17),
            format!("fresh-o{}", i % 31),
            if i % 3 == 0 { "v0" } else { "v1" },
        ));
    }
    let second = claims.split_off(60);
    (claims, second)
}

/// The synchronous reference: ingest, refit inline at the half-way claim count, ingest
/// the rest.
fn synchronous_reference(threads: usize) -> FusionEngine {
    let mut engine = fitted_engine(threads);
    let (first, second) = delta_halves();
    engine.ingest(&first).unwrap();
    engine.refit();
    engine.ingest(&second).unwrap();
    engine
}

/// The serving path: same stream, but the refit is captured at the same claim count
/// and trained as a background job while the second half ingests.
fn background_serving(threads: usize) -> ServingEngine {
    let mut serving = ServingEngine::new(fitted_engine(threads)).with_publish_every(7);
    let (first, second) = delta_halves();
    for batch in first.chunks(13) {
        serving.ingest(batch).unwrap();
    }
    assert!(serving.refit_background());
    for batch in second.chunks(13) {
        serving.ingest(batch).unwrap();
    }
    serving.drain();
    serving
}

#[test]
fn background_snapshot_matches_synchronous_refit_bitwise() {
    for threads in [1, 4] {
        let reference = synchronous_reference(threads);
        let serving = background_serving(threads);
        let snapshot = serving.snapshot();

        let bits = |w: &[f64]| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(reference.model().weights()),
            bits(snapshot.model().weights()),
            "background-trained weights diverged (threads = {threads})"
        );
        assert_eq!(reference.refit_count(), serving.engine().refit_count());
        // Every posterior served from the published snapshot is bitwise-identical to
        // the synchronous engine's.
        assert!(snapshot.dataset().num_objects() > 0);
        for i in 0..snapshot.dataset().num_objects() {
            let o = ObjectId::new(i);
            let served = snapshot.posterior_by_id(o).expect("in range");
            let reference = reference.posterior_by_id(o).expect("in range");
            assert_eq!(bits(&reference), bits(&served), "object {i}");
        }
        // The batched API serves the same bits from one consistent snapshot.
        let ids: Vec<ObjectId> = (0..snapshot.dataset().num_objects())
            .map(ObjectId::new)
            .collect();
        for (i, batch) in snapshot.posteriors(&ids).into_iter().enumerate() {
            let single = snapshot.posterior_by_id(ids[i]).expect("in range");
            assert_eq!(bits(&single), bits(&batch), "batched object {i}");
        }
        assert_eq!(serving.stats().staleness, 0);
    }
}

#[test]
fn thread_count_never_changes_served_posteriors() {
    let one = background_serving(1);
    let four = background_serving(4);
    let (s1, s4) = (one.snapshot(), four.snapshot());
    let bits = |w: &[f64]| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(s1.model().weights()), bits(s4.model().weights()));
    assert_eq!(s1.dataset().num_objects(), s4.dataset().num_objects());
    for i in 0..s1.dataset().num_objects() {
        let o = ObjectId::new(i);
        assert_eq!(
            bits(&s1.posterior_by_id(o).unwrap()),
            bits(&s4.posterior_by_id(o).unwrap()),
            "object {i}"
        );
    }
}

#[test]
fn readers_serve_consistently_while_the_writer_ingests_and_refits() {
    const READERS: usize = 4;
    let mut serving = ServingEngine::new(fitted_engine(0)).with_publish_every(16);
    let stop = AtomicBool::new(false);
    let served = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for r in 0..READERS {
            let mut reader = serving.reader();
            let (stop, served) = (&stop, &served);
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut i = r; // desynchronize the readers
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = reader.snapshot();
                    // Epochs only move forward under the reader's feet.
                    assert!(snapshot.epoch() >= last_epoch, "epoch went backwards");
                    last_epoch = snapshot.epoch();
                    let num_objects = snapshot.dataset().num_objects();
                    // Point query: normalized posterior or a clean None, never a panic.
                    let o = ObjectId::new(i % (num_objects + 3));
                    if let Some(p) = snapshot.posterior_by_id(o) {
                        if !p.is_empty() {
                            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                        }
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    // Batched query from one consistent snapshot, fanned over the same
                    // pool the background refits train on.
                    if i % 50 == 0 {
                        let ids: Vec<ObjectId> = (0..600)
                            .map(|k| ObjectId::new((i + k) % (num_objects + 3)))
                            .collect();
                        let batch = reader.posteriors(&ids);
                        assert_eq!(batch.len(), ids.len());
                        served.fetch_add(
                            batch.iter().filter(|p| !p.is_empty()).count(),
                            Ordering::Relaxed,
                        );
                    }
                    i += 1;
                }
            });
        }

        // The writer: ingest a long stream in batches with refits dispatched
        // periodically, all while the readers hammer the snapshots.
        let stream = stream_claims(4000);
        for (b, batch) in stream.chunks(40).enumerate() {
            // Re-asserted duplicates of the fitted instance are absorbed as idempotent.
            serving.ingest(batch).unwrap();
            if b % 10 == 3 {
                serving.refit_background();
            }
        }
        serving.drain();
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        served.load(Ordering::Relaxed) > 0,
        "readers never served a query"
    );
    let stats = serving.stats();
    assert_eq!(
        stats.staleness, 0,
        "drain must converge the published state"
    );
    assert!(!stats.refit_in_flight);
    assert!(stats.refits_installed >= 1, "no background refit landed");
    assert!(stats.snapshot_swaps >= 2);
    // The writer's final state is served verbatim by a fresh reader.
    let mut reader = serving.reader();
    assert_eq!(reader.snapshot().claims_ingested(), stats.claims_ingested);
}
