//! Property-based tests (proptest) over the core data structures and model invariants.

use proptest::prelude::*;

use slimfast::optim::{sigmoid, softmax_in_place, Penalty, SparseVec};
use slimfast::prelude::*;

/// Strategy producing a small random fusion instance as raw claims plus a latent truth.
fn claims_strategy() -> impl Strategy<Value = (usize, usize, usize, Vec<(usize, usize, usize)>)> {
    // (num_sources, num_objects, domain_size, claims)
    (2usize..8, 1usize..10, 2usize..4).prop_flat_map(|(s, o, d)| {
        let claims = proptest::collection::vec((0..s, 0..o, 0..d), 1..60);
        (Just(s), Just(o), Just(d), claims)
    })
}

fn build_dataset(
    num_sources: usize,
    num_objects: usize,
    domain: usize,
    claims: &[(usize, usize, usize)],
) -> Dataset {
    let mut builder = DatasetBuilder::new();
    builder.reserve_sources(num_sources);
    builder.reserve_objects(num_objects);
    for d in 0..domain {
        builder.intern_value(&format!("v{d}"));
    }
    for &(s, o, v) in claims {
        // Later conflicting claims by the same source are ignored (first claim wins).
        let _ = builder.observe_ids(SourceId::new(s), ObjectId::new(o), ValueId::new(v));
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The model posterior is always a probability distribution over the object's domain,
    /// for arbitrary weights and arbitrary observation patterns.
    fn posteriors_are_distributions(
        (s, o, d, claims) in claims_strategy(),
        weights in proptest::collection::vec(-3.0f64..3.0, 0..20),
    ) {
        let dataset = build_dataset(s, o, d, &claims);
        let features = FeatureMatrix::empty(dataset.num_sources());
        let space = ParameterSpace::new(&dataset, &features);
        let mut padded = weights;
        padded.resize(space.len(), 0.0);
        let model = SlimFastModel::new(space, padded);
        for object in dataset.object_ids() {
            let posterior = model.posterior(&dataset, &features, object);
            prop_assert_eq!(posterior.len(), dataset.domain(object).len());
            if !posterior.is_empty() {
                let sum: f64 = posterior.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
                prop_assert!(posterior.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    /// Estimated source accuracies always lie in (0, 1) and MAP predictions always pick a
    /// value some source actually claimed (single-truth / closed-world semantics).
    fn predictions_stay_inside_the_observed_domain(
        (s, o, d, claims) in claims_strategy(),
        weights in proptest::collection::vec(-5.0f64..5.0, 0..20),
    ) {
        let dataset = build_dataset(s, o, d, &claims);
        let features = FeatureMatrix::empty(dataset.num_sources());
        let space = ParameterSpace::new(&dataset, &features);
        let mut padded = weights;
        padded.resize(space.len(), 0.0);
        let model = SlimFastModel::new(space, padded);
        for source in dataset.source_ids() {
            let a = model.source_accuracy(source, &features);
            prop_assert!(a > 0.0 && a < 1.0);
        }
        let assignment = model.predict(&dataset, &features);
        for (object, value, confidence) in assignment.iter() {
            prop_assert!(dataset.domain(object).contains(&value));
            prop_assert!((0.0..=1.0).contains(&confidence));
        }
    }

    /// Majority vote always predicts a claimed value, and on unanimous objects it predicts
    /// the unanimous value with full confidence.
    fn majority_vote_respects_unanimity((s, o, d, claims) in claims_strategy()) {
        let dataset = build_dataset(s, o, d, &claims);
        let features = FeatureMatrix::empty(dataset.num_sources());
        let truth = GroundTruth::empty(dataset.num_objects());
        let output = MajorityVote.fuse(&FusionInput::new(&dataset, &features, &truth));
        for object in dataset.object_ids() {
            let domain = dataset.domain(object);
            match output.assignment.get(object) {
                Some(value) => {
                    prop_assert!(domain.contains(&value));
                    if domain.len() == 1 {
                        prop_assert!((output.assignment.confidence(object) - 1.0).abs() < 1e-9);
                    }
                }
                None => prop_assert!(domain.is_empty()),
            }
        }
    }

    /// Splits partition the labelled objects for every fraction and repetition.
    fn splits_partition_labels(
        num_objects in 1usize..200,
        fraction in 0.0f64..1.0,
        rep in 0u64..5,
        seed in 0u64..1000,
    ) {
        let truth = GroundTruth::from_pairs(
            num_objects,
            (0..num_objects).map(|i| (ObjectId::new(i), ValueId::new(0))),
        );
        let split = SplitPlan::new(fraction, seed).draw(&truth, rep).unwrap();
        let mut all: Vec<ObjectId> = split.train.iter().chain(split.test.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), num_objects);
        if fraction > 0.0 {
            prop_assert!(!split.train.is_empty());
        }
    }

    /// Sparse-vector dot products are linear and consistent with dense accumulation.
    fn sparse_vector_dot_is_linear(
        pairs in proptest::collection::vec((0usize..16, -10.0f64..10.0), 0..12),
        dense in proptest::collection::vec(-10.0f64..10.0, 16),
        scale in -3.0f64..3.0,
    ) {
        let v = SparseVec::from_pairs(pairs.clone());
        let mut accumulated = vec![0.0; 16];
        v.add_scaled_into(1.0, &mut accumulated);
        let dot_direct = v.dot(&dense);
        let dot_via_dense: f64 = accumulated.iter().zip(&dense).map(|(a, b)| a * b).sum();
        prop_assert!((dot_direct - dot_via_dense).abs() < 1e-6);
        // Scaling the accumulator scales the dot product.
        let mut scaled = vec![0.0; 16];
        v.add_scaled_into(scale, &mut scaled);
        let dot_scaled: f64 = scaled.iter().zip(&dense).map(|(a, b)| a * b).sum();
        prop_assert!((dot_scaled - scale * dot_direct).abs() < 1e-6);
    }

    /// The logistic function and softmax stay numerically sane on arbitrary inputs, and the
    /// L1 proximal operator never increases a weight's magnitude.
    fn numerical_primitives_are_stable(
        x in -1e6f64..1e6,
        scores in proptest::collection::vec(-100.0f64..100.0, 1..6),
        weight in -50.0f64..50.0,
        step in 0.0f64..5.0,
        lambda in 0.0f64..5.0,
    ) {
        let s = sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&s));
        let mut soft = scores;
        softmax_in_place(&mut soft);
        let sum: f64 = soft.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let shrunk = Penalty::L1(lambda).proximal(weight, step);
        prop_assert!(shrunk.abs() <= weight.abs() + 1e-12);
        prop_assert!(shrunk * weight >= 0.0, "soft thresholding must not flip signs");
    }

    /// Ground-truth accuracy bookkeeping: per-source accuracies derived from a labelling
    /// are always in [0, 1] and the assignment accuracy of the truth itself is 1.
    fn ground_truth_bookkeeping_is_consistent((s, o, d, claims) in claims_strategy()) {
        let dataset = build_dataset(s, o, d, &claims);
        // Label every observed object with its first observed value.
        let mut truth = GroundTruth::empty(dataset.num_objects());
        let mut assignment = TruthAssignment::empty(dataset.num_objects());
        let mut labelled = Vec::new();
        for object in dataset.object_ids() {
            if let Some(&value) = dataset.domain(object).first() {
                truth.set(object, value);
                assignment.assign(object, value, 1.0);
                labelled.push(object);
            }
        }
        for a in dataset.source_ids().filter_map(|src| truth.source_accuracies(&dataset)[src.index()]) {
            prop_assert!((0.0..=1.0).contains(&a));
        }
        if !labelled.is_empty() {
            prop_assert!((assignment.accuracy_against(&truth, &labelled) - 1.0).abs() < 1e-12);
        }
    }
}
