//! Determinism smoke tests: the whole pipeline — generation, splitting, learning, and
//! inference — must be byte-identical across runs given the same seeds. Future
//! parallelization work (sharding, multi-threaded learners) must keep this guarantee.

use slimfast::prelude::*;

fn config() -> SyntheticConfig {
    SyntheticConfig {
        name: "determinism".into(),
        num_sources: 40,
        num_objects: 120,
        domain_size: 3,
        pattern: slimfast::datagen::ObservationPattern::Bernoulli(0.1),
        accuracy: slimfast::datagen::AccuracyModel {
            mean: 0.7,
            spread: 0.1,
        },
        features: slimfast::datagen::FeatureModel {
            num_predictive: 2,
            num_noise: 2,
            predictive_strength: 0.3,
        },
        copying: None,
        seed: 99,
    }
}

fn run_once() -> (Vec<(ObjectId, ValueId, f64)>, Vec<f64>) {
    let instance = config().generate();
    let split = SplitPlan::new(0.2, 17).draw(&instance.truth, 1).unwrap();
    let train = split.train_truth(&instance.truth);
    let input = FusionInput::new(&instance.dataset, &instance.features, &train);
    let output = SlimFast::new(SlimFastConfig::default()).fuse(&input);
    let assignment: Vec<(ObjectId, ValueId, f64)> = output.assignment.iter().collect();
    let accuracies = output
        .source_accuracies
        .expect("SLiMFast reports source accuracies")
        .as_slice()
        .to_vec();
    (assignment, accuracies)
}

/// Same `SyntheticConfig` seed ⇒ identical generated instances.
#[test]
fn generation_is_deterministic() {
    let a = config().generate();
    let b = config().generate();
    assert_eq!(a.dataset.num_observations(), b.dataset.num_observations());
    assert_eq!(a.true_accuracies, b.true_accuracies);
    let obs_a: Vec<_> = a.dataset.observations().to_vec();
    let obs_b: Vec<_> = b.dataset.observations().to_vec();
    assert_eq!(obs_a, obs_b);
}

/// Same seed ⇒ bit-identical `FusionOutput` (assignment, confidences, and accuracy
/// estimates) across two full runs.
#[test]
fn fusion_output_is_deterministic() {
    let (assignment_a, accuracies_a) = run_once();
    let (assignment_b, accuracies_b) = run_once();
    assert_eq!(assignment_a, assignment_b);
    assert_eq!(accuracies_a, accuracies_b);
}

/// EM (the stochastic learner with the most moving parts) is deterministic end to end.
#[test]
fn em_fusion_is_deterministic() {
    let run = || {
        let instance = config().generate();
        let truth = GroundTruth::empty(instance.dataset.num_objects());
        let input = FusionInput::new(&instance.dataset, &instance.features, &truth);
        let output = SlimFast::em(SlimFastConfig::default().with_seed(5)).fuse(&input);
        output.assignment.iter().collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// The thread count changes wall-clock time, never results: a fitted model's posteriors
/// are bitwise-identical whether the sharded E-step and batched SGD run on one worker or
/// four. The instance is large enough (≥ 4 × batch_size claims) that the parallel
/// minibatch path actually engages.
#[test]
fn fitted_posteriors_are_bitwise_identical_across_thread_counts() {
    let instance = SyntheticConfig {
        name: "thread-determinism".into(),
        num_sources: 60,
        num_objects: 400,
        domain_size: 2,
        pattern: slimfast::datagen::ObservationPattern::Bernoulli(0.12),
        accuracy: slimfast::datagen::AccuracyModel {
            mean: 0.72,
            spread: 0.12,
        },
        features: slimfast::datagen::FeatureModel {
            num_predictive: 2,
            num_noise: 1,
            predictive_strength: 0.2,
        },
        copying: None,
        seed: 7,
    }
    .generate();
    assert!(
        instance.dataset.num_observations() >= 4 * SlimFastConfig::default().batch_size,
        "instance must be large enough to engage the batched parallel minimizer"
    );
    let truth = GroundTruth::empty(instance.dataset.num_objects());
    let input = FusionInput::new(&instance.dataset, &instance.features, &truth);

    let posteriors_with = |threads: usize| -> Vec<Vec<u64>> {
        let config = SlimFastConfig::default()
            .with_seed(11)
            .with_threads(threads);
        let fitted = SlimFast::em(config).fit(&input);
        instance
            .dataset
            .object_ids()
            .map(|o| {
                fitted
                    .posterior(&instance.dataset, &instance.features, o)
                    .iter()
                    .map(|p| p.to_bits())
                    .collect()
            })
            .collect()
    };
    let single = posteriors_with(1);
    let quad = posteriors_with(4);
    assert_eq!(single, quad);
}
