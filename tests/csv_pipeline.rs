//! Integration test of the I/O path: export a simulated instance to the CSV formats, read
//! it back, and verify fusion produces the same decisions on the round-tripped data.

use slimfast::data::{
    read_features_csv, read_ground_truth_csv, read_observations_csv, write_ground_truth_csv,
    write_observations_csv,
};
use slimfast::prelude::*;

#[test]
fn csv_round_trip_preserves_fusion_results() {
    let instance = slimfast::datagen::SyntheticConfig {
        name: "csv".into(),
        num_sources: 30,
        num_objects: 80,
        domain_size: 2,
        pattern: slimfast::datagen::ObservationPattern::PerObjectExact(6),
        accuracy: slimfast::datagen::AccuracyModel {
            mean: 0.7,
            spread: 0.1,
        },
        features: slimfast::datagen::FeatureModel {
            num_predictive: 2,
            num_noise: 1,
            predictive_strength: 0.2,
        },
        copying: None,
        seed: 3,
    }
    .generate();

    // --- Export observations and ground truth. -------------------------------------------
    let mut obs_csv = Vec::new();
    write_observations_csv(&instance.dataset, &mut obs_csv).unwrap();
    let mut truth_csv = Vec::new();
    write_ground_truth_csv(&instance.dataset, &instance.truth, &mut truth_csv).unwrap();
    // Features exported by hand in the `source,feature,value` format.
    let mut feat_csv = String::new();
    for s in instance.dataset.source_ids() {
        for (k, v) in instance.features.features_of(s) {
            feat_csv.push_str(&format!(
                "{},{},{}\n",
                instance.dataset.source_name(s).unwrap(),
                instance.features.feature_name(*k).unwrap(),
                v
            ));
        }
    }

    // --- Re-import. ----------------------------------------------------------------------
    let dataset = read_observations_csv(obs_csv.as_slice()).unwrap();
    assert_eq!(
        dataset.num_observations(),
        instance.dataset.num_observations()
    );
    assert_eq!(dataset.num_sources(), instance.dataset.num_sources());
    let truth = read_ground_truth_csv(&dataset, truth_csv.as_slice()).unwrap();
    assert_eq!(truth.num_labeled(), instance.truth.num_labeled());
    let features = read_features_csv(&dataset, feat_csv.as_bytes()).unwrap();
    assert_eq!(features.num_features(), instance.features.num_features());
    assert_eq!(
        features.num_feature_values(),
        instance.features.num_feature_values()
    );

    // --- Fuse both versions with the same configuration and compare decisions. -----------
    let config = SlimFastConfig {
        erm_epochs: 30,
        ..Default::default()
    };
    let split = SplitPlan::new(0.2, 1).draw(&truth, 0).unwrap();
    let train_roundtrip = split.train_truth(&truth);
    let output_roundtrip = SlimFast::erm(config.clone()).fuse(&FusionInput::new(
        &dataset,
        &features,
        &train_roundtrip,
    ));

    // The same objects by name must get the same predicted value by name.
    let original_split = SplitPlan::new(0.2, 1).draw(&instance.truth, 0).unwrap();
    let train_original = original_split.train_truth(&instance.truth);
    let output_original = SlimFast::erm(config).fuse(&FusionInput::new(
        &instance.dataset,
        &instance.features,
        &train_original,
    ));

    let mut compared = 0usize;
    let mut agreements = 0usize;
    for o in instance.dataset.object_ids() {
        let name = instance.dataset.object_name(o).unwrap();
        let reparsed_o = dataset.object_id(name).unwrap();
        let original_value = output_original
            .assignment
            .get(o)
            .and_then(|v| instance.dataset.value_name(v));
        let roundtrip_value = output_roundtrip
            .assignment
            .get(reparsed_o)
            .and_then(|v| dataset.value_name(v));
        if let (Some(a), Some(b)) = (original_value, roundtrip_value) {
            compared += 1;
            if a == b {
                agreements += 1;
            }
        }
    }
    assert!(compared > 0);
    let agreement = agreements as f64 / compared as f64;
    // Value handles are re-assigned in observation order on import, which permutes class
    // order inside each training example; SGD therefore converges to a slightly different
    // (equally good) optimum, so we require high but not perfect agreement.
    assert!(
        agreement > 0.9,
        "round-tripped data should yield (nearly) identical decisions, got {agreement:.3}"
    );
}
