//! Columnar snapshot persistence through the facade: dataset containers round-trip
//! losslessly against an in-memory oracle, corruption of any kind fails with the typed
//! persistence errors (never a panic), a serving tier cold-started from a persisted
//! [`ModelSnapshot`] serves bitwise-identical posteriors, and the committed golden
//! fixture pins the v1 wire format byte-for-byte.

use proptest::prelude::*;
use slimfast::data::snapshot::{dataset_from_bytes, dataset_to_bytes};
use slimfast::data::{format, DataError, Observation};
use slimfast::prelude::*;

/// Builds a compacted dataset from raw `(source, object, value)` triples, ignoring
/// idempotent duplicates and conflicts (the oracle is whatever the builder accepted).
fn dataset_from_triples(triples: &[(u8, u8, u8)]) -> Dataset {
    let mut b = DatasetBuilder::new();
    for &(s, o, v) in triples {
        let _ = b.observe(&format!("s{s}"), &format!("o{o}"), &format!("v{v}"));
    }
    b.build()
}

/// Asserts that `restored` is indistinguishable from `original` through every public
/// accessor a fusion method or serving tier relies on.
fn assert_datasets_equal(original: &Dataset, restored: &Dataset) {
    assert!(restored.same_content(original));
    assert_eq!(restored.num_sources(), original.num_sources());
    assert_eq!(restored.num_objects(), original.num_objects());
    assert_eq!(restored.num_values(), original.num_values());
    assert_eq!(restored.num_observations(), original.num_observations());
    assert_eq!(restored.observations(), original.observations());
    for o in (0..original.num_objects()).map(ObjectId::new) {
        assert_eq!(restored.domain(o), original.domain(o), "domain of {o:?}");
        assert_eq!(
            restored.observations_for_object(o),
            original.observations_for_object(o),
            "row of {o:?}"
        );
        assert_eq!(restored.object_name(o), original.object_name(o));
    }
    for s in original.source_ids() {
        assert_eq!(
            restored.observations_by_source(s),
            original.observations_by_source(s),
            "row of {s:?}"
        );
        assert_eq!(restored.source_name(s), original.source_name(s));
        if let Some(name) = original.source_name(s) {
            assert_eq!(restored.source_id(name), Some(s));
        }
    }
    for v in (0..original.num_values()).map(ValueId::new) {
        assert_eq!(restored.value_name(v), original.value_name(v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dataset_containers_round_trip_losslessly(
        triples in proptest::collection::vec((0..12u8, 0..20u8, 0..4u8), 1..120)
    ) {
        let dataset = dataset_from_triples(&triples);
        let bytes = dataset_to_bytes(&dataset).unwrap();
        let restored = dataset_from_bytes(&bytes).unwrap();
        assert_datasets_equal(&dataset, &restored);
    }

    #[test]
    fn windowed_datasets_round_trip_after_compaction(
        triples in proptest::collection::vec((0..10u8, 0..16u8, 0..3u8), 1..80),
        appended in proptest::collection::vec((0..10u8, 16..24u8, 0..3u8), 1..40),
        evictions in 0..16usize,
    ) {
        // Exercise the full mutation surface before persisting: streaming appends into
        // the delta overlay, window evictions, and the compaction that snapshots require.
        let mut dataset = dataset_from_triples(&triples);
        for &(s, o, v) in &appended {
            let _ = dataset.append_named(&format!("s{s}"), &format!("o{o}"), &format!("v{v}"));
        }
        let victims: Vec<_> = dataset
            .live_observations()
            .take(evictions)
            .map(|obs| (obs.source, obs.object))
            .collect();
        dataset.evict_batch(&victims);
        dataset.compact();

        let bytes = dataset_to_bytes(&dataset).unwrap();
        let restored = dataset_from_bytes(&bytes).unwrap();
        assert_datasets_equal(&dataset, &restored);
        // A restored dataset is a first-class citizen: it keeps accepting appends.
        let mut grown = restored;
        grown.append_named("s-new", "o-new", "v0").unwrap();
        prop_assert_eq!(grown.num_observations(), dataset.num_observations() + 1);
    }

    #[test]
    fn corrupted_containers_fail_without_panicking(
        triples in proptest::collection::vec((0..8u8, 0..12u8, 0..3u8), 1..60),
        position in 0..u16::MAX,
        mask in 1..=255u8,
    ) {
        let bytes = dataset_to_bytes(&dataset_from_triples(&triples)).unwrap();
        let mut corrupted = bytes.clone();
        let pos = position as usize % corrupted.len();
        corrupted[pos] ^= mask;
        // Every byte of the container is covered by the magic, the version field, or
        // the trailing checksum: any flip must surface as a typed error, never a panic.
        prop_assert!(dataset_from_bytes(&corrupted).is_err(), "flip at {}", pos);
    }
}

#[test]
fn truncated_containers_fail_at_every_prefix() {
    let triples: Vec<(u8, u8, u8)> = (0..50).map(|i| (i % 7, i % 11, i % 3)).collect();
    let bytes = dataset_to_bytes(&dataset_from_triples(&triples)).unwrap();
    for len in 0..bytes.len() {
        assert!(
            dataset_from_bytes(&bytes[..len]).is_err(),
            "prefix of {len} bytes must fail"
        );
    }
}

#[test]
fn containers_fail_with_the_typed_persistence_errors() {
    let triples: Vec<(u8, u8, u8)> = (0..30).map(|i| (i % 5, i % 9, i % 3)).collect();
    let good = dataset_to_bytes(&dataset_from_triples(&triples)).unwrap();

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        dataset_from_bytes(&bad_magic),
        Err(DataError::CorruptModel { .. })
    ));

    // A genuinely newer container (version bumped *and* checksum re-stamped) must be
    // reported as unsupported, not corrupt — that is the compatibility promise.
    let mut future = good.clone();
    future[4..8].copy_from_slice(&u32::to_le_bytes(99));
    future.truncate(future.len() - 8);
    format::append_checksum(&mut future);
    assert!(matches!(
        dataset_from_bytes(&future),
        Err(DataError::UnsupportedModelVersion {
            found: 99,
            supported: _
        })
    ));
}

fn fitted_serving_engine() -> ServingEngine {
    let mut b = DatasetBuilder::new();
    for i in 0..240usize {
        let _ = b.observe(
            &format!("s{}", i % 13),
            &format!("o{}", i % 41),
            &format!("v{}", (i * 7) % 4),
        );
    }
    let dataset = b.build();
    let mut fb = FeatureMatrixBuilder::new();
    for s in 0..13usize {
        if s % 3 == 0 {
            fb.set_flag(SourceId::new(s), "Citations=High");
        }
        fb.set(SourceId::new(s), "traffic", s as f64 * 0.25);
    }
    let features = fb.build(dataset.num_sources());
    let mut truth = GroundTruth::empty(dataset.num_objects());
    truth.set(
        dataset.object_id("o0").unwrap(),
        dataset.value_id("v0").unwrap(),
    );
    let engine = FusionEngine::fit(
        SlimFast::em(SlimFastConfig::default()),
        dataset,
        features,
        truth,
        RefitPolicy::Never,
    );
    ServingEngine::new(engine)
}

#[test]
fn cold_start_from_snapshot_serves_bitwise_identical_posteriors() {
    let mut serving = fitted_serving_engine();
    let live: Vec<NamedObservation> = (0..90)
        .map(|i| {
            NamedObservation::new(
                format!("s{}", i % 13),
                format!("live-o{}", i % 29),
                format!("v{}", i % 4),
            )
        })
        .collect();
    serving.ingest(&live).unwrap();
    serving.refit_now();
    let saved = serving.snapshot();

    // Persist through the byte channel and cold-start a brand-new serving tier.
    let bytes = saved.to_bytes().unwrap();
    let restored = ModelSnapshot::from_bytes(&bytes).unwrap();
    let mut revived = ServingEngine::from_snapshot(
        restored,
        SlimFast::em(SlimFastConfig::default()),
        RefitPolicy::Never,
    );
    let mut reader = revived.reader();

    // Bitwise-identical posteriors for every object, no retraining involved
    // (exercised at SLIMFAST_THREADS = 1 and 4 by the CI matrix).
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for o in (0..saved.dataset().num_objects()).map(ObjectId::new) {
        let before = saved.posterior_by_id(o).unwrap();
        let after = reader.posterior_by_id(o).unwrap();
        assert_eq!(bits(&before), bits(&after), "object {o:?}");
    }
    // Batched queries agree too, and the revived tier keeps serving new claims.
    let ids: Vec<ObjectId> = (0..saved.dataset().num_objects())
        .map(ObjectId::new)
        .collect();
    let batch_before = saved.posteriors(&ids);
    let batch_after = reader.posteriors(&ids);
    for (i, (b, a)) in batch_before.iter().zip(&batch_after).enumerate() {
        assert_eq!(bits(b), bits(a), "batched object {i}");
    }
    revived
        .ingest(&[NamedObservation::new("s0", "post-restart", "v1")])
        .unwrap();
    revived.publish_now();
    assert!(reader.posterior("post-restart").is_some());
    assert_eq!(reader.staleness(), 0);
}

/// The golden fixture's serving state. Every number below is produced by exact f64
/// arithmetic (multiples of 1/8 — no transcendentals), so the serialized bytes are
/// identical on every platform and toolchain.
fn golden_state() -> ServingEngine {
    let mut b = DatasetBuilder::new();
    for i in 0..30usize {
        b.observe(
            &format!("src-{}", i % 6),
            &format!("obj-{}", i % 10),
            &format!("val-{}", (i * 7) % 3),
        )
        .unwrap();
    }
    let dataset = b.build();
    let mut fb = FeatureMatrixBuilder::new();
    for s in 0..6usize {
        if s % 2 == 0 {
            fb.set_flag(SourceId::new(s), "Citations=High");
        }
        fb.set(SourceId::new(s), "traffic", s as f64 * 0.5);
    }
    let features = fb.build(dataset.num_sources());
    let space = ParameterSpace::new(&dataset, &features);
    let weights: Vec<f64> = (0..space.len()).map(|i| i as f64 * 0.375 - 1.0).collect();
    let model = SlimFastModel::new(space, weights);
    let truth = GroundTruth::empty(dataset.num_objects());
    let engine = FusionEngine::from_model(
        SlimFast::em(SlimFastConfig::default()),
        model,
        OptimizerDecision::Em,
        dataset,
        features,
        truth,
        RefitPolicy::Never,
    );
    ServingEngine::new(engine)
}

/// Pins the v1 snapshot wire format: the committed fixture must match freshly
/// serialized bytes exactly, and must load into a snapshot that still serves. If the
/// format ever changes, this fails loudly — bump the container version and regenerate
/// with `SLIMFAST_REGEN_GOLDEN=1 cargo test --test snapshot golden`.
#[test]
fn golden_v1_snapshot_fixture_is_stable() {
    let saved = golden_state().snapshot();
    let bytes = saved.to_bytes().unwrap();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_snapshot_v1.bin"
    );
    if std::env::var_os("SLIMFAST_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &bytes).unwrap();
        return;
    }
    let fixture = std::fs::read(path).expect("committed golden fixture");
    assert_eq!(
        bytes, fixture,
        "serialized bytes no longer match the committed v1 fixture — \
         this is a wire-format change"
    );

    let restored = ModelSnapshot::from_bytes(&fixture).unwrap();
    assert_eq!(restored.epoch(), 1);
    assert_eq!(restored.claims_ingested(), 0);
    assert_eq!(restored.decision(), OptimizerDecision::Em);
    let space_len = restored.model().weights().len();
    for (i, w) in restored.model().weights().iter().enumerate() {
        assert_eq!(
            w.to_bits(),
            (i as f64 * 0.375 - 1.0).to_bits(),
            "weight {i}"
        );
    }
    assert_eq!(space_len, restored.dataset().num_sources() + 2);
    let posterior = restored.posterior("obj-0").unwrap();
    assert_eq!(
        posterior.len(),
        restored.dataset().domain(ObjectId::new(0)).len()
    );
    assert!((posterior.iter().sum::<f64>() - 1.0).abs() < 1e-12);
}

// Keep `Observation` linked so the oracle comparison stays honest if its fields move.
#[allow(dead_code)]
fn _observation_shape(obs: &Observation) -> (SourceId, ObjectId, ValueId) {
    (obs.source, obs.object, obs.value)
}
